#include "serve/registry.hpp"

#include <mutex>

namespace pimecc::serve {

std::shared_ptr<const circuits::CircuitSpec> Registry::circuit(
    const std::string& name) {
  {
    std::shared_lock lock(mutex_);
    const auto it = circuits_.find(name);
    if (it != circuits_.end()) {
      stats_.circuit_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Build outside the lock; throws for unknown names before any insert.
  auto built = std::make_shared<const circuits::CircuitSpec>(
      circuits::build_circuit(name));
  stats_.circuit_misses.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(mutex_);
  auto [it, inserted] = circuits_.try_emplace(name, std::move(built));
  return it->second;  // a racing builder may have won; serve its copy
}

std::shared_ptr<const simpler::MappedProgram> Registry::program(
    const std::string& name, std::size_t row_width) {
  const auto key = std::make_pair(name, row_width);
  {
    std::shared_lock lock(mutex_);
    const auto it = programs_.find(key);
    if (it != programs_.end()) {
      stats_.program_hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  const auto spec = circuit(name);
  simpler::MapperOptions options;
  options.row_width = row_width;
  auto mapped = std::make_shared<const simpler::MappedProgram>(
      simpler::map_to_row(spec->netlist, options));
  stats_.program_misses.fetch_add(1, std::memory_order_relaxed);
  std::unique_lock lock(mutex_);
  auto [it, inserted] = programs_.try_emplace(key, std::move(mapped));
  return it->second;
}

Registry::MachineLease Registry::acquire_machine(std::size_t n, std::size_t m) {
  const auto key = std::make_pair(n, m);
  {
    std::unique_lock lock(mutex_);
    auto it = machines_.find(key);
    if (it != machines_.end() && !it->second.empty()) {
      std::unique_ptr<arch::PimMachine> machine = std::move(it->second.back());
      it->second.pop_back();
      stats_.machine_reuses.fetch_add(1, std::memory_order_relaxed);
      return MachineLease(*this, n, m, std::move(machine));
    }
  }
  arch::ArchParams params;
  params.n = n;
  params.m = m;
  auto machine = std::make_unique<arch::PimMachine>(params);  // validates
  stats_.machine_builds.fetch_add(1, std::memory_order_relaxed);
  return MachineLease(*this, n, m, std::move(machine));
}

void Registry::release_machine(std::size_t n, std::size_t m,
                               std::unique_ptr<arch::PimMachine> machine) {
  std::unique_lock lock(mutex_);
  machines_[{n, m}].push_back(std::move(machine));
}

Registry::MachineLease::~MachineLease() {
  if (registry_ != nullptr && machine_ != nullptr) {
    registry_->release_machine(n_, m_, std::move(machine_));
  }
}

RegistryStats Registry::stats() const {
  RegistryStats out;
  out.circuit_hits = stats_.circuit_hits.load(std::memory_order_relaxed);
  out.circuit_misses = stats_.circuit_misses.load(std::memory_order_relaxed);
  out.program_hits = stats_.program_hits.load(std::memory_order_relaxed);
  out.program_misses = stats_.program_misses.load(std::memory_order_relaxed);
  out.machine_reuses = stats_.machine_reuses.load(std::memory_order_relaxed);
  out.machine_builds = stats_.machine_builds.load(std::memory_order_relaxed);
  return out;
}

}  // namespace pimecc::serve
