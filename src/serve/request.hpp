// pimecc -- serve/request.hpp
//
// Request/response vocabulary of the serving front end (tools/pimecc
// serve + the batched Server).  A request is one line of text in
// `kind key=value ...` form -- the trace format the daemon reads and the
// sweep driver generates:
//
//   map      circuit=ctrl width=1020 n=1020 m=15 pcs=3 coverage=both minpcs=0
//   run      circuit=ctrl n=1020 m=15 seed=42
//   mttf     fit=1e-3 period=24 n=1020 m=15 gib=1
//   sweep    fit_low=1e-4 fit_high=1 ppd=2 period=24 n=1020 m=15 gib=1
//   scenario model=mixed policy=hotrow n=60 m=15 trials=64 horizon=240 fit=1e-3 seed=7
//
// Every numeric field goes through util/parse's strict helpers, so a
// malformed line becomes a rejected request (Response.ok == false), never
// a half-parsed default or a terminate.  Responses render back to one
// line, which keeps the daemon's stdout a machine-readable transcript.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/error.hpp"
#include "simpler/ecc_schedule.hpp"

namespace pimecc::serve {

enum class RequestKind : unsigned char { kMap, kRun, kMttf, kSweep, kScenario };

[[nodiscard]] std::string_view kind_name(RequestKind kind) noexcept;

/// One parsed request.  Field relevance depends on `kind`; unrelated
/// fields keep their defaults and are ignored by the handler.
struct Request {
  RequestKind kind = RequestKind::kMap;

  // kMap / kRun: which benchmark and architecture point.
  std::string circuit = "ctrl";
  std::size_t row_width = 1020;  ///< mapper row width W (kMap)
  std::size_t n = 1020;
  std::size_t m = 15;
  std::size_t pcs = 3;
  simpler::CoveragePolicy coverage = simpler::CoveragePolicy::kInputsAndOutputs;
  bool min_pcs = false;  ///< kMap: also search the Table I "PC (#)" column

  // kRun: SIMD protected execution with per-lane random inputs.
  std::uint64_t seed = 1;

  // kMttf / kSweep: analytic reliability point(s).
  double fit_per_bit = 1e-3;
  double period_hours = 24.0;
  double memory_gib = 1.0;
  double fit_low = 1e-4;
  double fit_high = 1.0;
  std::size_t points_per_decade = 2;

  // kScenario: Monte Carlo lifetime under a named fault-model preset and
  // scrub-policy preset (reliability/scenario.hpp), at the canonical
  // workload; `period` sets the policy's full-scrub/backstop period and
  // `fit` the SER.
  std::string model = "iid";       ///< rel::fault_preset_names()
  std::string policy = "periodic"; ///< rel::scrub_policy_preset_names()
  std::size_t trials = 64;
  double horizon_hours = 240.0;

  // All kinds: per-request deadline, milliseconds from submission.  0 means
  // no deadline.  Checked at admission into a batch lane (cooperative --
  // an already-executing request runs to completion).
  double deadline_ms = 0.0;
};

/// Parses one trace line.  Returns false and sets `error` on an unknown
/// kind, unknown key, malformed value, or duplicate key; `out` is only
/// meaningful on success.  Blank lines and `#` comments return false with
/// an empty error (callers skip them silently).
bool parse_request(std::string_view line, Request& out, std::string& error);

/// Outcome of one served request.
struct Response {
  bool ok = false;
  RequestKind kind = RequestKind::kMap;
  ErrorCode code = ErrorCode::kNone;  ///< typed failure class when !ok
  std::string error;                  ///< set when !ok

  // kMap
  std::uint64_t baseline_cycles = 0;
  std::uint64_t proposed_cycles = 0;
  std::uint64_t stall_cycles = 0;
  double overhead = 0.0;
  std::size_t min_pcs = 0;  ///< 0 when the search was not requested

  // kRun
  std::size_t lanes = 0;        ///< SIMD rows executed
  std::size_t mismatches = 0;   ///< lanes whose outputs differ from the model
  std::size_t corrections = 0;  ///< before-use check repairs
  bool ecc_consistent = false;

  // kMttf / kSweep
  double baseline_mttf_hours = 0.0;
  double proposed_mttf_hours = 0.0;
  double improvement = 0.0;
  std::size_t sweep_points = 0;
  double min_improvement = 0.0;
  double max_improvement = 0.0;

  // kScenario
  std::size_t trials_run = 0;
  std::size_t failures = 0;
  double scenario_mttf_hours = 0.0;
  double scrub_cells_per_hour = 0.0;
};

/// Renders a response as one `ok ...` / `error ...` line (no newline).
[[nodiscard]] std::string format_response(const Response& response);

}  // namespace pimecc::serve
