#include "xbar/crossbar.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "util/simd.hpp"

namespace pimecc::xbar {

Crossbar::Crossbar(std::size_t n_rows, std::size_t n_cols) : mat_(n_rows, n_cols) {
  if (n_rows == 0 || n_cols == 0) {
    throw std::invalid_argument("Crossbar: dimensions must be positive");
  }
  ones_cols_ = util::BitVector(n_cols, true);
  row_activation_extra_.assign(n_rows, 0);
}

void Crossbar::write_row(std::size_t r, const util::BitVector& data) {
  if (r >= rows()) {
    throw std::out_of_range("Crossbar::write_row: row out of range");
  }
  if (data.size() != cols()) {
    throw std::invalid_argument("Crossbar::write_row: size mismatch");
  }
  mat_.row(r) = data;
  ++row_activation_extra_[r];
  ++cycles_;
}

void Crossbar::write_column(std::size_t c, const util::BitVector& data) {
  if (c >= cols()) {
    throw std::out_of_range("Crossbar::write_column: column out of range");
  }
  if (data.size() != rows()) {
    throw std::invalid_argument("Crossbar::write_column: size mismatch");
  }
  mat_.set_column(c, data);
  ++broadcast_activations_;
  ++cycles_;
}

util::BitVector Crossbar::read_row(std::size_t r) {
  if (r >= rows()) {
    throw std::out_of_range("Crossbar::read_row: row out of range");
  }
  ++row_activation_extra_[r];
  ++cycles_;
  return mat_.row(r);
}

util::BitVector Crossbar::read_column(std::size_t c) {
  if (c >= cols()) {
    throw std::out_of_range("Crossbar::read_column: column out of range");
  }
  ++broadcast_activations_;
  ++cycles_;
  return mat_.column(c);
}

void Crossbar::write_bit(std::size_t r, std::size_t c, bool value) {
  if (r >= rows() || c >= cols()) {
    throw std::out_of_range("Crossbar::write_bit: index out of range");
  }
  mat_.set(r, c, value);
  ++row_activation_extra_[r];
  ++cycles_;
}

bool Crossbar::read_bit(std::size_t r, std::size_t c) {
  if (r >= rows() || c >= cols()) {
    throw std::out_of_range("Crossbar::read_bit: index out of range");
  }
  ++row_activation_extra_[r];
  ++cycles_;
  return mat_.get(r, c);
}

void Crossbar::check_line(Orientation o, std::size_t line, const char* what) const {
  const std::size_t limit = o == Orientation::kRow ? cols() : rows();
  if (line >= limit) {
    throw std::out_of_range(std::string("Crossbar: ") + what + " line out of range");
  }
}

void Crossbar::check_lane(Orientation o, std::size_t lane) const {
  if (lane >= lane_count(o)) {
    throw std::out_of_range("Crossbar: lane out of range");
  }
}

const util::BitVector& Crossbar::col_lane_mask(std::span<const std::size_t> lanes,
                                               bool require_distinct) {
  if (lanes.empty()) return ones_cols_;
  lane_mask_.resize(cols());
  lane_mask_.fill(false);
  for (const std::size_t lane : lanes) {
    check_lane(Orientation::kColumn, lane);
    if (require_distinct && lane_mask_.get(lane)) {
      throw std::invalid_argument("Crossbar: duplicate lane");
    }
    lane_mask_.set(lane, true);
  }
  return lane_mask_;
}

void Crossbar::check_lanes_distinct(Orientation o,
                                    std::span<const std::size_t> lanes) {
  if (lanes.empty()) return;
  lane_mask_.resize(lane_count(o));
  lane_mask_.fill(false);
  for (const std::size_t lane : lanes) {
    check_lane(o, lane);
    if (lane_mask_.get(lane)) {
      throw std::invalid_argument("Crossbar: duplicate lane");
    }
    lane_mask_.set(lane, true);
  }
}

void Crossbar::magic_init(Orientation o, std::span<const std::size_t> lines,
                          std::span<const std::size_t> lanes) {
  for (const std::size_t line : lines) check_line(o, line, "init");
  for (const std::size_t lane : lanes) check_lane(o, lane);

  if (o == Orientation::kRow) {
    // Lines are columns.  For wide batches, OR one column mask into each
    // selected row (cols/64 word ops per row); for narrow batches a single
    // word-OR per (row, line) touches far less memory.
    const std::span<util::BitVector> row_store = mat_.rows_span();
    if (lines.size() > mat_.cols() / util::BitVector::kWordBits) {
      acc_.resize(cols());
      acc_.fill(false);
      for (const std::size_t line : lines) acc_.set(line, true);
      if (lanes.empty()) {
        for (util::BitVector& row : row_store) row |= acc_;
      } else {
        for (const std::size_t lane : lanes) row_store[lane] |= acc_;
      }
    } else {
      for (const std::size_t line : lines) {
        const std::size_t wi = line / util::BitVector::kWordBits;
        const util::BitVector::Word bit = util::BitVector::Word{1}
                                          << (line % util::BitVector::kWordBits);
        if (lanes.empty()) {
          for (util::BitVector& row : row_store) row.words_mutable()[wi] |= bit;
        } else {
          for (const std::size_t lane : lanes) {
            row_store[lane].words_mutable()[wi] |= bit;
          }
        }
      }
    }
  } else {
    // Lines are rows: OR the lane (column) mask into each selected row.
    const util::BitVector& mask = col_lane_mask(lanes, /*require_distinct=*/false);
    for (const std::size_t line : lines) mat_.row(line) |= mask;
  }
  // Activation accounting: kColumn drives the gate-line wordlines; kRow
  // drives the selected rows' wordlines (all of them when lanes is empty).
  if (o == Orientation::kColumn) {
    for (const std::size_t line : lines) ++row_activation_extra_[line];
  } else if (lanes.empty()) {
    ++broadcast_activations_;
  } else {
    for (const std::size_t lane : lanes) ++row_activation_extra_[lane];
  }
  ++cycles_;
  ++init_cycles_;
}

OpResult Crossbar::magic_nor(Orientation o, std::span<const std::size_t> in_lines,
                             std::size_t out_line,
                             std::span<const std::size_t> lanes) {
  if (in_lines.empty()) {
    throw std::invalid_argument("Crossbar::magic_nor: needs at least one input");
  }
  for (const std::size_t line : in_lines) {
    check_line(o, line, "input");
    if (line == out_line) {
      throw std::invalid_argument("Crossbar::magic_nor: output overlaps an input");
    }
  }
  check_line(o, out_line, "output");

  OpResult result;
  result.lanes = lanes.empty() ? lane_count(o) : lanes.size();
  if (o == Orientation::kColumn) {
    const util::BitVector& mask = col_lane_mask(lanes, /*require_distinct=*/true);
    // Lanes are columns, lines are rows: one fused, dispatched
    // (scalar/AVX2/AVX-512) pass over the row words computes the physics
    //   out' = out AND NOT(mask AND OR(ins))   [= out AND NOR(ins) in lanes]
    // and the violation count popcount(mask AND NOT out) together, instead
    // of the former copy/OR/invert/count/AND/assign BitVector chain.  The
    // mask's padding words are zero (BitVector invariant), so the output
    // row's padding is preserved verbatim.
    in_ptrs_.clear();
    for (const std::size_t line : in_lines) {
      in_ptrs_.push_back(mat_.row(line).words().data());
    }
    util::BitVector& out = mat_.row(out_line);
    result.violations = util::simd::kernels().nor_column_pass(
        in_ptrs_.data(), in_ptrs_.size(), mask.words().data(),
        out.words_mutable().data(), out.word_count());
  } else {
    // Lanes are rows, lines are columns: one fused pass per selected row --
    // read the input column bits and the output bit from that row's words,
    // apply the physics, write the output bit back.  A single row touch per
    // lane instead of separate gather/scatter column walks.  Word offsets
    // and shifts are resolved once, outside the lane loop; fan-in 1 and 2
    // (NOT and the dominant NOR shape) get branch-free specializations.
    // This orientation intentionally stays scalar at every SIMD dispatch
    // level: each lane reads/writes a handful of scattered single words
    // across independent per-row allocations, so a vector port is pure
    // gather/scatter over the same scattered words with nothing contiguous
    // to amortize -- unlike the column path above, where lanes are adjacent
    // bits of the same words.
    check_lanes_distinct(o, lanes);
    const std::span<util::BitVector> row_store = mat_.rows_span();
    using Word = util::BitVector::Word;
    constexpr std::size_t kWordBits = util::BitVector::kWordBits;
    const std::size_t out_wi = out_line / kWordBits;
    const unsigned out_shift = static_cast<unsigned>(out_line % kWordBits);
    const Word out_bit_mask = Word{1} << out_shift;
    line_refs_.clear();
    for (const std::size_t line : in_lines) {
      line_refs_.push_back(
          {line / kWordBits, static_cast<unsigned>(line % kWordBits)});
    }
    std::size_t violations = 0;
    auto finish_row = [&](std::span<Word> words, Word any) {
      const Word out_was_lrs = (words[out_wi] >> out_shift) & 1u;
      violations += static_cast<std::size_t>(out_was_lrs ^ 1u);
      const Word driven = out_was_lrs & (any ^ 1u);
      words[out_wi] = (words[out_wi] & ~out_bit_mask) | (driven << out_shift);
    };
    auto for_each_lane = [&](auto&& per_row) {
      if (lanes.empty()) {
        for (util::BitVector& row : row_store) per_row(row.words_mutable());
      } else {
        for (const std::size_t lane : lanes) {
          per_row(row_store[lane].words_mutable());
        }
      }
    };
    if (line_refs_.size() == 1) {
      const LineRef a = line_refs_[0];
      for_each_lane([&](std::span<Word> words) {
        finish_row(words, (words[a.wi] >> a.shift) & 1u);
      });
    } else if (line_refs_.size() == 2) {
      const LineRef a = line_refs_[0];
      const LineRef b = line_refs_[1];
      for_each_lane([&](std::span<Word> words) {
        finish_row(words,
                   ((words[a.wi] >> a.shift) | (words[b.wi] >> b.shift)) & 1u);
      });
    } else {
      for_each_lane([&](std::span<Word> words) {
        Word any = 0;
        for (const LineRef& in : line_refs_) any |= words[in.wi] >> in.shift;
        finish_row(words, any & 1u);
      });
    }
    result.violations = violations;
  }
  // Activation accounting (see magic_init): kColumn's gate lines are the
  // driven wordlines; kRow drives the selected lane rows.
  if (o == Orientation::kColumn) {
    for (const std::size_t line : in_lines) ++row_activation_extra_[line];
    ++row_activation_extra_[out_line];
  } else if (lanes.empty()) {
    ++broadcast_activations_;
  } else {
    for (const std::size_t lane : lanes) ++row_activation_extra_[lane];
  }
  ++cycles_;
  ++nor_ops_;
  return result;
}

OpResult Crossbar::magic_not(Orientation o, std::size_t in_line, std::size_t out_line,
                             std::span<const std::size_t> lanes) {
  const std::size_t ins[1] = {in_line};
  return magic_nor(o, ins, out_line, lanes);
}

void Crossbar::reset_counters() noexcept {
  cycles_ = 0;
  nor_ops_ = 0;
  init_cycles_ = 0;
}

std::uint64_t Crossbar::row_activations(std::size_t r) const {
  if (r >= rows()) {
    throw std::out_of_range("Crossbar::row_activations: row out of range");
  }
  return broadcast_activations_ + row_activation_extra_[r];
}

std::vector<std::uint64_t> Crossbar::row_activation_snapshot() const {
  std::vector<std::uint64_t> snapshot(row_activation_extra_);
  for (std::uint64_t& count : snapshot) count += broadcast_activations_;
  return snapshot;
}

void Crossbar::reset_row_activations() noexcept {
  broadcast_activations_ = 0;
  std::fill(row_activation_extra_.begin(), row_activation_extra_.end(), 0);
}

}  // namespace pimecc::xbar
