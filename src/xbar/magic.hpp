// pimecc -- xbar/magic.hpp
//
// Common MAGIC (Memristor-Aided loGIC, Kvatinsky et al., TCAS-II 2014)
// vocabulary: stateful logic inside a memristive crossbar.
//
// Data is resistance: LRS (low resistive state) encodes logic 1, HRS
// encodes logic 0.  A MAGIC NOR gate drives one *output* memristor, which
// must be initialized to LRS beforehand, from one or more *input*
// memristors in the same row (or the same column).  Applying the gate
// voltages switches the output to HRS iff any input is LRS -- i.e. the
// output becomes NOR(inputs).  The same gate can execute simultaneously in
// every row (column) of the array: one clock cycle, massive parallelism.
#pragma once

#include <cstdint>

namespace pimecc::xbar {

/// Whether a parallel MAGIC operation runs a gate inside each row (the gate
/// spans columns, replicated down all selected rows) or inside each column.
enum class Orientation : std::uint8_t {
  kRow,     ///< gate inputs/output are columns; replicated across rows
  kColumn,  ///< gate inputs/output are rows; replicated across columns
};

/// Logic state encoded by memristor resistance.
enum class State : std::uint8_t {
  kHrs = 0,  ///< high resistive state, logic 0
  kLrs = 1,  ///< low resistive state, logic 1
};

[[nodiscard]] constexpr bool to_bool(State s) noexcept { return s == State::kLrs; }
[[nodiscard]] constexpr State to_state(bool b) noexcept {
  return b ? State::kLrs : State::kHrs;
}

/// Kinds of single-cycle crossbar operations the simulator models.
enum class OpKind : std::uint8_t {
  kNor,    ///< parallel MAGIC NOR (1+ inputs; 1-input NOR is NOT)
  kInit,   ///< parallel initialization of cells to LRS (required before NOR output)
  kWrite,  ///< external write through the controller (not a stateful-logic op)
  kRead,   ///< external read through the controller
};

[[nodiscard]] constexpr const char* to_string(Orientation o) noexcept {
  return o == Orientation::kRow ? "row" : "column";
}

[[nodiscard]] constexpr const char* to_string(OpKind k) noexcept {
  switch (k) {
    case OpKind::kNor: return "nor";
    case OpKind::kInit: return "init";
    case OpKind::kWrite: return "write";
    case OpKind::kRead: return "read";
  }
  return "?";
}

}  // namespace pimecc::xbar
