// pimecc -- xbar/reference_crossbar.hpp
//
// Bit-serial golden model of the MAGIC crossbar.
//
// This is the original scalar engine, retained verbatim (modulo the uniform
// validation shared with Crossbar): every lane of a parallel MAGIC
// operation is executed one bit at a time.  It exists purely as the
// reference in differential tests and benchmarks -- the production engine
// is the word-parallel Crossbar (crossbar.hpp), which must match this model
// bit-for-bit in contents, cycle counts, and violation counts on any
// program.  Keep the two classes' public APIs identical.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"
#include "xbar/crossbar.hpp"  // OpResult
#include "xbar/magic.hpp"

namespace pimecc::xbar {

/// Bit-serial twin of Crossbar; see file comment.
class ReferenceCrossbar {
 public:
  ReferenceCrossbar(std::size_t n_rows, std::size_t n_cols);

  [[nodiscard]] std::size_t rows() const noexcept { return mat_.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return mat_.cols(); }

  void write_row(std::size_t r, const util::BitVector& data);
  void write_column(std::size_t c, const util::BitVector& data);
  [[nodiscard]] util::BitVector read_row(std::size_t r);
  [[nodiscard]] util::BitVector read_column(std::size_t c);
  void write_bit(std::size_t r, std::size_t c, bool value);
  [[nodiscard]] bool read_bit(std::size_t r, std::size_t c);

  [[nodiscard]] bool peek(std::size_t r, std::size_t c) const { return mat_.at(r, c); }
  void poke(std::size_t r, std::size_t c, bool v) { mat_.set(r, c, v); }
  [[nodiscard]] const util::BitMatrix& contents() const noexcept { return mat_; }
  [[nodiscard]] util::BitMatrix& contents_mutable() noexcept { return mat_; }

  void magic_init(Orientation o, std::span<const std::size_t> lines,
                  std::span<const std::size_t> lanes = {});
  OpResult magic_nor(Orientation o, std::span<const std::size_t> in_lines,
                     std::size_t out_line,
                     std::span<const std::size_t> lanes = {});
  OpResult magic_not(Orientation o, std::size_t in_line, std::size_t out_line,
                     std::span<const std::size_t> lanes = {});

  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  [[nodiscard]] std::uint64_t nor_ops() const noexcept { return nor_ops_; }
  [[nodiscard]] std::uint64_t init_cycles() const noexcept { return init_cycles_; }
  void reset_counters() noexcept;

  /// Per-row wordline-activation accounting, identical in semantics and
  /// counts to Crossbar (see crossbar.hpp): differential tests pin the two
  /// engines' activation snapshots against each other on random programs.
  [[nodiscard]] std::uint64_t row_activations(std::size_t r) const;
  [[nodiscard]] std::vector<std::uint64_t> row_activation_snapshot() const;
  void reset_row_activations() noexcept;

 private:
  void check_line(Orientation o, std::size_t line, const char* what) const;
  void check_lane(Orientation o, std::size_t lane) const;
  void check_distinct_lanes(Orientation o, std::span<const std::size_t> lanes) const;
  [[nodiscard]] std::size_t lane_count(Orientation o) const noexcept {
    return o == Orientation::kRow ? rows() : cols();
  }

  util::BitMatrix mat_;
  std::uint64_t cycles_ = 0;
  std::uint64_t nor_ops_ = 0;
  std::uint64_t init_cycles_ = 0;
  std::uint64_t broadcast_activations_ = 0;
  std::vector<std::uint64_t> row_activation_extra_;
};

}  // namespace pimecc::xbar
