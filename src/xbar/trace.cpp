#include "xbar/trace.hpp"

#include <sstream>

namespace pimecc::xbar {

std::string TraceEntry::to_string() const {
  std::ostringstream os;
  os << '[' << cycle << "] " << pimecc::xbar::to_string(kind) << ' '
     << pimecc::xbar::to_string(orientation) << " in={";
  for (std::size_t i = 0; i < in_lines.size(); ++i) {
    if (i != 0) os << ',';
    os << in_lines[i];
  }
  os << "} out=" << out_line << " lanes=" << lanes;
  return os.str();
}

std::size_t Trace::count(OpKind kind) const noexcept {
  std::size_t n = 0;
  for (const auto& e : entries_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string Trace::to_string() const {
  std::ostringstream os;
  for (const auto& e : entries_) os << e.to_string() << '\n';
  return os.str();
}

}  // namespace pimecc::xbar
