// pimecc -- xbar/trace.hpp
//
// Lightweight operation trace for debugging schedules and for asserting
// structural properties in tests (e.g. "each diagonal is touched at most
// once per parallel operation", the Section III invariant).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xbar/magic.hpp"

namespace pimecc::xbar {

/// One recorded crossbar operation.
struct TraceEntry {
  std::uint64_t cycle = 0;
  OpKind kind = OpKind::kNor;
  Orientation orientation = Orientation::kRow;
  std::vector<std::size_t> in_lines;
  std::size_t out_line = 0;
  std::size_t lanes = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Append-only trace with simple aggregate queries.
class Trace {
 public:
  void record(TraceEntry entry) { entries_.push_back(std::move(entry)); }

  [[nodiscard]] const std::vector<TraceEntry>& entries() const noexcept {
    return entries_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }

  /// Number of entries of the given kind.
  [[nodiscard]] std::size_t count(OpKind kind) const noexcept;

  /// Multi-line human-readable dump.
  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<TraceEntry> entries_;
};

}  // namespace pimecc::xbar
