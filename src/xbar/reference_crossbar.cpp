#include "xbar/reference_crossbar.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

namespace pimecc::xbar {

ReferenceCrossbar::ReferenceCrossbar(std::size_t n_rows, std::size_t n_cols)
    : mat_(n_rows, n_cols) {
  if (n_rows == 0 || n_cols == 0) {
    throw std::invalid_argument("ReferenceCrossbar: dimensions must be positive");
  }
  row_activation_extra_.assign(n_rows, 0);
}

void ReferenceCrossbar::write_row(std::size_t r, const util::BitVector& data) {
  if (r >= rows()) {
    throw std::out_of_range("ReferenceCrossbar::write_row: row out of range");
  }
  if (data.size() != cols()) {
    throw std::invalid_argument("ReferenceCrossbar::write_row: size mismatch");
  }
  for (std::size_t c = 0; c < cols(); ++c) mat_.set(r, c, data.get(c));
  ++row_activation_extra_[r];
  ++cycles_;
}

void ReferenceCrossbar::write_column(std::size_t c, const util::BitVector& data) {
  if (c >= cols()) {
    throw std::out_of_range("ReferenceCrossbar::write_column: column out of range");
  }
  if (data.size() != rows()) {
    throw std::invalid_argument("ReferenceCrossbar::write_column: size mismatch");
  }
  for (std::size_t r = 0; r < rows(); ++r) mat_.set(r, c, data.get(r));
  ++broadcast_activations_;
  ++cycles_;
}

util::BitVector ReferenceCrossbar::read_row(std::size_t r) {
  if (r >= rows()) {
    throw std::out_of_range("ReferenceCrossbar::read_row: row out of range");
  }
  ++row_activation_extra_[r];
  ++cycles_;
  util::BitVector out(cols());
  for (std::size_t c = 0; c < cols(); ++c) out.set(c, mat_.get(r, c));
  return out;
}

util::BitVector ReferenceCrossbar::read_column(std::size_t c) {
  if (c >= cols()) {
    throw std::out_of_range("ReferenceCrossbar::read_column: column out of range");
  }
  ++broadcast_activations_;
  ++cycles_;
  util::BitVector out(rows());
  for (std::size_t r = 0; r < rows(); ++r) out.set(r, mat_.get(r, c));
  return out;
}

void ReferenceCrossbar::write_bit(std::size_t r, std::size_t c, bool value) {
  if (r >= rows() || c >= cols()) {
    throw std::out_of_range("ReferenceCrossbar::write_bit: index out of range");
  }
  mat_.set(r, c, value);
  ++row_activation_extra_[r];
  ++cycles_;
}

bool ReferenceCrossbar::read_bit(std::size_t r, std::size_t c) {
  if (r >= rows() || c >= cols()) {
    throw std::out_of_range("ReferenceCrossbar::read_bit: index out of range");
  }
  ++row_activation_extra_[r];
  ++cycles_;
  return mat_.get(r, c);
}

void ReferenceCrossbar::check_line(Orientation o, std::size_t line,
                                   const char* what) const {
  const std::size_t limit = o == Orientation::kRow ? cols() : rows();
  if (line >= limit) {
    throw std::out_of_range(std::string("ReferenceCrossbar: ") + what +
                            " line out of range");
  }
}

void ReferenceCrossbar::check_lane(Orientation o, std::size_t lane) const {
  if (lane >= lane_count(o)) {
    throw std::out_of_range("ReferenceCrossbar: lane out of range");
  }
}

void ReferenceCrossbar::check_distinct_lanes(
    Orientation o, std::span<const std::size_t> lanes) const {
  std::vector<bool> seen(lane_count(o), false);
  for (const std::size_t lane : lanes) {
    check_lane(o, lane);
    if (seen[lane]) {
      throw std::invalid_argument("ReferenceCrossbar: duplicate lane");
    }
    seen[lane] = true;
  }
}

void ReferenceCrossbar::magic_init(Orientation o, std::span<const std::size_t> lines,
                                   std::span<const std::size_t> lanes) {
  for (const std::size_t line : lines) check_line(o, line, "init");
  for (const std::size_t lane : lanes) check_lane(o, lane);

  auto init_cell = [&](std::size_t lane, std::size_t line) {
    if (o == Orientation::kRow) {
      mat_.set(lane, line, true);
    } else {
      mat_.set(line, lane, true);
    }
  };
  if (lanes.empty()) {
    for (std::size_t lane = 0; lane < lane_count(o); ++lane) {
      for (const std::size_t line : lines) init_cell(lane, line);
    }
  } else {
    for (const std::size_t lane : lanes) {
      for (const std::size_t line : lines) init_cell(lane, line);
    }
  }
  // Activation accounting, identical to Crossbar: kColumn drives the
  // gate-line wordlines; kRow drives the selected lane rows.
  if (o == Orientation::kColumn) {
    for (const std::size_t line : lines) ++row_activation_extra_[line];
  } else if (lanes.empty()) {
    ++broadcast_activations_;
  } else {
    for (const std::size_t lane : lanes) ++row_activation_extra_[lane];
  }
  ++cycles_;
  ++init_cycles_;
}

OpResult ReferenceCrossbar::magic_nor(Orientation o,
                                      std::span<const std::size_t> in_lines,
                                      std::size_t out_line,
                                      std::span<const std::size_t> lanes) {
  if (in_lines.empty()) {
    throw std::invalid_argument("ReferenceCrossbar::magic_nor: needs at least one input");
  }
  for (const std::size_t line : in_lines) {
    check_line(o, line, "input");
    if (line == out_line) {
      throw std::invalid_argument(
          "ReferenceCrossbar::magic_nor: output overlaps an input");
    }
  }
  check_line(o, out_line, "output");
  check_distinct_lanes(o, lanes);

  OpResult result;
  auto get_cell = [&](std::size_t lane, std::size_t line) {
    return o == Orientation::kRow ? mat_.get(lane, line) : mat_.get(line, lane);
  };
  auto apply_lane = [&](std::size_t lane) {
    bool any_input_set = false;
    for (const std::size_t line : in_lines) {
      any_input_set = any_input_set || get_cell(lane, line);
    }
    const bool nor_value = !any_input_set;
    const bool out_was_lrs = get_cell(lane, out_line);
    if (!out_was_lrs) ++result.violations;
    // Physics: NOR can only switch LRS->HRS; an uninitialized (HRS) output
    // stays HRS regardless of the logical NOR value.
    const bool driven = out_was_lrs ? nor_value : false;
    if (o == Orientation::kRow) {
      mat_.set(lane, out_line, driven);
    } else {
      mat_.set(out_line, lane, driven);
    }
    ++result.lanes;
  };
  if (lanes.empty()) {
    for (std::size_t lane = 0; lane < lane_count(o); ++lane) apply_lane(lane);
  } else {
    for (const std::size_t lane : lanes) apply_lane(lane);
  }
  // Activation accounting, identical to Crossbar: kColumn drives the
  // gate-line wordlines; kRow drives the selected lane rows.
  if (o == Orientation::kColumn) {
    for (const std::size_t line : in_lines) ++row_activation_extra_[line];
    ++row_activation_extra_[out_line];
  } else if (lanes.empty()) {
    ++broadcast_activations_;
  } else {
    for (const std::size_t lane : lanes) ++row_activation_extra_[lane];
  }
  ++cycles_;
  ++nor_ops_;
  return result;
}

OpResult ReferenceCrossbar::magic_not(Orientation o, std::size_t in_line,
                                      std::size_t out_line,
                                      std::span<const std::size_t> lanes) {
  const std::size_t ins[1] = {in_line};
  return magic_nor(o, ins, out_line, lanes);
}

void ReferenceCrossbar::reset_counters() noexcept {
  cycles_ = 0;
  nor_ops_ = 0;
  init_cycles_ = 0;
}

std::uint64_t ReferenceCrossbar::row_activations(std::size_t r) const {
  if (r >= rows()) {
    throw std::out_of_range(
        "ReferenceCrossbar::row_activations: row out of range");
  }
  return broadcast_activations_ + row_activation_extra_[r];
}

std::vector<std::uint64_t> ReferenceCrossbar::row_activation_snapshot() const {
  std::vector<std::uint64_t> snapshot(row_activation_extra_);
  for (std::uint64_t& count : snapshot) count += broadcast_activations_;
  return snapshot;
}

void ReferenceCrossbar::reset_row_activations() noexcept {
  broadcast_activations_ = 0;
  std::fill(row_activation_extra_.begin(), row_activation_extra_.end(), 0);
}

}  // namespace pimecc::xbar
