// pimecc -- xbar/crossbar.hpp
//
// Functional + cycle-counting model of a single memristive crossbar array
// executing MAGIC stateful logic (paper Section II-A, Figure 1).
//
// The model is *logical*: each memristor is one bit (LRS=1/HRS=0).  Analog
// non-idealities are out of scope here; soft errors are injected by
// src/fault on top of this state.  Every mutating entry point advances the
// cycle counter exactly like the paper's latency accounting: one cycle per
// parallel NOR, one cycle per batched initialization.
//
// This is the *word-parallel* engine: for kColumn orientation a parallel
// MAGIC operation executes all selected lanes at once with 64-bit word
// operations directly on the row vectors; for kRow orientation it makes one
// fused pass per selected lane with word offsets precomputed per operation.
// Precondition violations are counted via popcount, never per bit.  The
// original bit-serial engine is retained verbatim as ReferenceCrossbar
// (reference_crossbar.hpp) and serves as the golden model in differential
// tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"
#include "xbar/magic.hpp"

namespace pimecc::xbar {

/// Result of one parallel MAGIC operation.
struct OpResult {
  std::size_t lanes = 0;          ///< rows (columns) the gate executed in
  std::size_t violations = 0;     ///< output cells that were not LRS-initialized
};

/// A single n_rows x n_cols memristive crossbar with MAGIC execution.
///
/// MAGIC preconditions are enforced as the physics dictates: an output cell
/// that was not initialized to LRS yields an undefined device result; the
/// simulator implements the conservative semantics out' = out AND NOR(in)
/// (an HRS output can never be driven back to LRS by a NOR) and reports the
/// violation count so tests can assert clean execution.
///
/// Validation is uniform across every external entry point: indices and
/// sizes are checked *before* any state or cycle-counter mutation, so a
/// throwing call leaves the crossbar untouched.
class Crossbar {
 public:
  Crossbar(std::size_t n_rows, std::size_t n_cols);

  [[nodiscard]] std::size_t rows() const noexcept { return mat_.rows(); }
  [[nodiscard]] std::size_t cols() const noexcept { return mat_.cols(); }

  // --- external (controller) access: counts kWrite/kRead cycles -----------
  /// Writes a full row image (size must equal cols()).
  void write_row(std::size_t r, const util::BitVector& data);
  /// Writes a full column image (size must equal rows()).
  void write_column(std::size_t c, const util::BitVector& data);
  /// Reads a row copy.
  [[nodiscard]] util::BitVector read_row(std::size_t r);
  /// Reads a column copy.
  [[nodiscard]] util::BitVector read_column(std::size_t c);
  /// Writes a single bit (counts one write cycle).
  void write_bit(std::size_t r, std::size_t c, bool value);
  /// Reads a single bit (counts one read cycle).
  [[nodiscard]] bool read_bit(std::size_t r, std::size_t c);

  // --- zero-cost inspection (test/golden-model access, no cycles) ---------
  [[nodiscard]] bool peek(std::size_t r, std::size_t c) const { return mat_.at(r, c); }
  void poke(std::size_t r, std::size_t c, bool v) { mat_.set(r, c, v); }
  [[nodiscard]] const util::BitMatrix& contents() const noexcept { return mat_; }
  [[nodiscard]] util::BitMatrix& contents_mutable() noexcept { return mat_; }

  // --- MAGIC stateful logic (1 cycle each) ---------------------------------
  /// Parallel initialization to LRS (logic 1) of cells at the given
  /// lines: for kRow orientation, initializes column `line` in every
  /// selected row; for kColumn, row `line` in every selected column.
  /// Multiple lines may be initialized in the same cycle (SIMPLER's batched
  /// init).  Empty `lanes` selects all lanes.
  void magic_init(Orientation o, std::span<const std::size_t> lines,
                  std::span<const std::size_t> lanes = {});

  /// Parallel MAGIC NOR.
  ///
  /// kRow: out(r, out_line) = NOR_i in(r, in_lines[i]) for every selected
  /// row r.  kColumn: out(out_line, c) = NOR_i in(in_lines[i], c) for every
  /// selected column c.  1-input NOR is MAGIC NOT.  Empty `lanes` selects
  /// all lanes; explicit lanes must be distinct (a physical lane cannot be
  /// driven twice in one cycle).  Output cells must have been magic_init'ed
  /// to LRS; violations are counted in the result (see class comment).
  OpResult magic_nor(Orientation o, std::span<const std::size_t> in_lines,
                     std::size_t out_line,
                     std::span<const std::size_t> lanes = {});

  /// Convenience single-input NOR (MAGIC NOT).
  OpResult magic_not(Orientation o, std::size_t in_line, std::size_t out_line,
                     std::span<const std::size_t> lanes = {});

  // --- cycle accounting ----------------------------------------------------
  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }
  [[nodiscard]] std::uint64_t nor_ops() const noexcept { return nor_ops_; }
  [[nodiscard]] std::uint64_t init_cycles() const noexcept { return init_cycles_; }
  void reset_counters() noexcept;

  /// Counter snapshot for the checkpoint layer: PimMachine derives its
  /// MEM-cycle accounting from cycles(), so a restored machine must resume
  /// from the saved counter values or its post-resume accounting would
  /// diverge from an uninterrupted run.
  struct Counters {
    std::uint64_t cycles = 0;
    std::uint64_t nor_ops = 0;
    std::uint64_t init_cycles = 0;
    bool operator==(const Counters&) const noexcept = default;
  };
  [[nodiscard]] Counters counters() const noexcept {
    return {cycles_, nor_ops_, init_cycles_};
  }
  void restore_counters(const Counters& counters) noexcept {
    cycles_ = counters.cycles;
    nor_ops_ = counters.nor_ops;
    init_cycles_ = counters.init_cycles;
  }

  // --- per-row activation accounting (scenario-diversity workloads) --------
  /// How many times row r has been driven as a wordline since the last
  /// reset: controller row/bit accesses plus MAGIC operations whose gate
  /// lines are rows (kColumn orientation counts every in/out/init line).
  /// Operations that drive every wordline at once -- column accesses and
  /// kRow-orientation MAGIC over all lanes -- are tallied in a single
  /// broadcast counter instead of rows() per-row increments, keeping the
  /// hot path O(lines) per operation.  This is campaign-local
  /// observability feeding fault::DisturbanceModel and the
  /// activation-triggered scrub policies; it is deliberately NOT part of
  /// Counters, so checkpoint formats are unchanged and a restored machine
  /// starts its activation history fresh.
  [[nodiscard]] std::uint64_t row_activations(std::size_t r) const;
  /// Dense snapshot (broadcast + per-row extra), length rows().
  [[nodiscard]] std::vector<std::uint64_t> row_activation_snapshot() const;
  void reset_row_activations() noexcept;

 private:
  void check_line(Orientation o, std::size_t line, const char* what) const;
  void check_lane(Orientation o, std::size_t lane) const;
  [[nodiscard]] std::size_t lane_count(Orientation o) const noexcept {
    return o == Orientation::kRow ? rows() : cols();
  }
  /// Builds the column-lane selection mask into lane_mask_ (validating
  /// indices and, when required, distinctness) and returns it; returns the
  /// cached all-ones mask when `lanes` is empty.  kColumn orientation only
  /// -- the kRow engine never materializes a mask.
  const util::BitVector& col_lane_mask(std::span<const std::size_t> lanes,
                                       bool require_distinct);
  /// Validates lane indices and rejects duplicates (no-op for empty lanes);
  /// uses lane_mask_ as the seen-set scratch.
  void check_lanes_distinct(Orientation o, std::span<const std::size_t> lanes);

  util::BitMatrix mat_;
  std::uint64_t cycles_ = 0;
  std::uint64_t nor_ops_ = 0;
  std::uint64_t init_cycles_ = 0;
  std::uint64_t broadcast_activations_ = 0;     ///< all-wordline drives
  std::vector<std::uint64_t> row_activation_extra_;  ///< addressed drives

  // Scratch buffers reused across operations so the hot path is
  // allocation-free in steady state.
  /// Word offset + shift of one gate line, resolved once per operation.
  struct LineRef {
    std::size_t wi;
    unsigned shift;
  };

  util::BitVector lane_mask_;     ///< lane-selection mask for explicit subsets
  util::BitVector acc_;           ///< init batch mask (kRow magic_init)
  util::BitVector ones_cols_;     ///< all-ones over cols()
  std::vector<LineRef> line_refs_;  ///< per-input offsets (kRow fused path)
  std::vector<const std::uint64_t*> in_ptrs_;  ///< input row words (kColumn)
};

}  // namespace pimecc::xbar
