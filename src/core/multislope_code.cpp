#include "core/multislope_code.hpp"

#include <algorithm>
#include <cstdint>
#include <span>
#include <stdexcept>

#include "core/geometry.hpp"
#include "util/modmath.hpp"

namespace pimecc::ecc {

MultiSlopeCodec::MultiSlopeCodec(std::size_t m, std::vector<std::size_t> slopes)
    : m_(m), slopes_(std::move(slopes)) {
  if (m == 0) {
    throw std::invalid_argument("MultiSlopeCodec: m must be positive");
  }
  if (slopes_.empty()) {
    throw std::invalid_argument("MultiSlopeCodec: need at least one family");
  }
  for (auto& s : slopes_) s %= m_;
  inv_slopes_.reserve(slopes_.size());
  for (std::size_t i = 0; i < slopes_.size(); ++i) {
    const auto inv = util::mod_inverse(static_cast<std::int64_t>(slopes_[i]),
                                       static_cast<std::int64_t>(m_));
    if (!inv.has_value()) {
      throw std::invalid_argument(
          "MultiSlopeCodec: every slope must be coprime to m");
    }
    inv_slopes_.push_back(static_cast<std::size_t>(
        util::floor_mod(*inv, static_cast<std::int64_t>(m_))));
    for (std::size_t j = i + 1; j < slopes_.size(); ++j) {
      if (slopes_[i] == slopes_[j]) {
        throw std::invalid_argument("MultiSlopeCodec: slopes must be distinct");
      }
    }
  }
}

std::size_t MultiSlopeCodec::line_of(std::size_t f, std::size_t r,
                                     std::size_t c) const {
  return (r % m_ + slopes_[f] * (c % m_)) % m_;
}

void MultiSlopeCodec::require_window(const util::BitMatrix& data,
                                     std::size_t row0, std::size_t col0) const {
  if (row0 + m_ > data.rows() || col0 + m_ > data.cols()) {
    throw std::out_of_range("MultiSlopeCodec: block window exceeds bounds");
  }
}

MultiCheckBits MultiSlopeCodec::encode(const util::BitMatrix& data,
                                       std::size_t row0, std::size_t col0) const {
  require_window(data, row0, col0);
  MultiCheckBits check;
  check.family_parity.assign(families(), util::BitVector(m_));
  if (m_ > diagword::kMaxM) {
    // Bit-serial fallback for blocks wider than one word (matches
    // reference_multislope_encode).
    for (std::size_t r = 0; r < m_; ++r) {
      for (std::size_t c = 0; c < m_; ++c) {
        if (!data.get(row0 + r, col0 + c)) continue;
        for (std::size_t f = 0; f < families(); ++f) {
          check.family_parity[f].flip(line_of(f, r, c));
        }
      }
    }
    return check;
  }
  // Word-parallel path: in GF(2)[x]/(x^m - 1), family f's parity is
  // sum_r x^r p_r(x^{s_f}) = q_f(x^{s_f}) with q_f = sum_r x^{r/s_f} p_r,
  // so each row costs one rotate+XOR per family and the stride
  // substitution runs once per block (diagword in core/geometry).
  const std::span<const util::BitVector> rows = data.rows_span();
  std::vector<std::uint64_t> acc(families(), 0);
  std::vector<std::size_t> rot(families(), 0);  // (r * inv_slope_f) mod m
  for (std::size_t r = 0; r < m_; ++r) {
    const std::uint64_t seg = diagword::extract(rows[row0 + r].words(), col0, m_);
    for (std::size_t f = 0; f < families(); ++f) {
      acc[f] ^= diagword::rotl(seg, rot[f], m_);
      rot[f] += inv_slopes_[f];
      if (rot[f] >= m_) rot[f] -= m_;
    }
  }
  for (std::size_t f = 0; f < families(); ++f) {
    check.family_parity[f].set_low_word(
        diagword::stride_permute(acc[f], slopes_[f], m_));
  }
  return check;
}

void MultiSlopeCodec::update_for_write(MultiCheckBits& check, std::size_t r,
                                       std::size_t c, bool old_value,
                                       bool new_value) const {
  if (old_value == new_value) return;
  for (std::size_t f = 0; f < families(); ++f) {
    check.family_parity[f].flip(line_of(f, r, c));
  }
}

std::vector<util::BitVector> MultiSlopeCodec::syndrome(
    const util::BitMatrix& data, std::size_t row0, std::size_t col0,
    const MultiCheckBits& stored) const {
  if (stored.family_parity.size() != families()) {
    throw std::invalid_argument("MultiSlopeCodec: stored check-bit mismatch");
  }
  const MultiCheckBits fresh = encode(data, row0, col0);
  std::vector<util::BitVector> syn(families());
  for (std::size_t f = 0; f < families(); ++f) {
    syn[f] = fresh.family_parity[f] ^ stored.family_parity[f];
  }
  return syn;
}

bool MultiSlopeCodec::explains(
    const std::vector<util::BitVector>& syn,
    const std::vector<std::pair<std::size_t, std::size_t>>& cells) const {
  for (std::size_t f = 0; f < families(); ++f) {
    util::BitVector flips(m_);
    for (const auto& [r, c] : cells) flips.flip(line_of(f, r, c));
    if (!(flips == syn[f])) return false;
  }
  return true;
}

MultiDecodeResult MultiSlopeCodec::check_and_correct(
    util::BitMatrix& data, std::size_t row0, std::size_t col0,
    MultiCheckBits& stored) const {
  const std::vector<util::BitVector> syn = syndrome(data, row0, col0, stored);
  MultiDecodeResult result;

  bool any = false;
  for (const auto& s : syn) any = any || s.any();
  if (!any) {
    result.status = MultiDecodeStatus::kClean;
    return result;
  }

  using Cells = std::vector<std::pair<std::size_t, std::size_t>>;
  std::vector<Cells> matches;
  auto consider = [&](const Cells& cells) {
    if (matches.size() < 2 && explains(syn, cells)) {
      // Reject duplicates arising from symmetric enumeration.
      for (const Cells& seen : matches) {
        if (seen == cells) return;
      }
      matches.push_back(cells);
    }
  };
  auto sorted = [](Cells cells) {
    std::sort(cells.begin(), cells.end());
    return cells;
  };

  // Size 1: the error's family-0 and family-1 lines pin (r, c) when K >= 2;
  // with K == 1 any cell on the flagged line is a candidate (ambiguous for
  // m > 1, so effectively detection-only -- as expected of plain parity).
  if (syn[0].count() == 1) {
    const std::size_t line0 = syn[0].find_first();
    for (std::size_t c = 0; c < m_; ++c) {
      // r + s0*c = line0  =>  r = line0 - s0*c (mod m).
      const std::size_t r = static_cast<std::size_t>(util::floor_mod(
          static_cast<std::int64_t>(line0) -
              static_cast<std::int64_t>(slopes_[0] * c),
          static_cast<std::int64_t>(m_)));
      consider({{r, c}});
      if (matches.size() >= 2) break;
    }
  }

  // Size 2 (needs K >= 3 for reliable disambiguation; searched for K >= 2
  // as well -- uniqueness still filters).  The two errors' family-0 lines
  // are the two flagged lines, or both lie on one line when family 0 shows
  // no flag.
  if (matches.size() < 2 && families() >= 2) {
    const std::size_t flags0 = syn[0].count();
    auto cells_on_line0 = [&](std::size_t line) {
      Cells cells;
      for (std::size_t c = 0; c < m_; ++c) {
        const std::size_t r = static_cast<std::size_t>(util::floor_mod(
            static_cast<std::int64_t>(line) -
                static_cast<std::int64_t>(slopes_[0] * c),
            static_cast<std::int64_t>(m_)));
        cells.push_back({r, c});
      }
      return cells;
    };
    if (flags0 == 2) {
      const std::size_t a = syn[0].find_first();
      const std::size_t b = syn[0].find_next(a);
      for (const auto& ca : cells_on_line0(a)) {
        for (const auto& cb : cells_on_line0(b)) {
          consider(sorted({ca, cb}));
          if (matches.size() >= 2) break;
        }
        if (matches.size() >= 2) break;
      }
    } else if (flags0 == 0) {
      for (std::size_t line = 0; line < m_ && matches.size() < 2; ++line) {
        const Cells on_line = cells_on_line0(line);
        for (std::size_t i = 0; i < on_line.size() && matches.size() < 2; ++i) {
          for (std::size_t j = i + 1; j < on_line.size(); ++j) {
            consider(sorted({on_line[i], on_line[j]}));
            if (matches.size() >= 2) break;
          }
        }
      }
    }
  }

  if (matches.size() == 1) {
    for (const auto& [r, c] : matches.front()) {
      data.flip(row0 + r, col0 + c);
    }
    result.status = MultiDecodeStatus::kCorrected;
    result.corrected_cells = matches.front();
    return result;
  }
  if (matches.empty()) {
    // No data explanation: check whether flipped *check bits* alone explain
    // the syndrome (each syndrome flag is one bad stored parity).
    std::size_t total_flags = 0;
    for (const auto& s : syn) total_flags += s.count();
    // Data errors always flag every family equally often; a pattern where
    // some families are clean and others are not can only be check-bit
    // corruption (or a >max-size error burst -- indistinguishable, so only
    // accept small counts).
    std::size_t clean_families = 0;
    for (const auto& s : syn) clean_families += s.none() ? 1 : 0;
    if (clean_families > 0 && total_flags <= families()) {
      for (std::size_t f = 0; f < families(); ++f) {
        for (std::size_t line = syn[f].find_first(); line < m_;
             line = syn[f].find_next(line)) {
          stored.family_parity[f].flip(line);
          ++result.corrected_check_bits;
        }
      }
      result.status = MultiDecodeStatus::kCorrected;
      return result;
    }
  }
  result.status = MultiDecodeStatus::kDetectedUncorrectable;
  return result;
}

}  // namespace pimecc::ecc
