#include "core/geometry.hpp"

namespace pimecc::ecc {

DiagonalGeometry::DiagonalGeometry(std::size_t m) : m_(m), inv2_(0) {
  if (m == 0 || !util::is_odd(static_cast<std::int64_t>(m))) {
    throw std::invalid_argument(
        "DiagonalGeometry: block size m must be odd (paper footnote 1)");
  }
  inv2_ = static_cast<std::size_t>(util::inverse_of_two(static_cast<std::int64_t>(m)));
}

Cell DiagonalGeometry::locate(DiagonalPair d) const {
  if (d.leading >= m_ || d.counter >= m_) {
    throw std::out_of_range("DiagonalGeometry::locate: diagonal index out of range");
  }
  // r = (a + b) * inv2 mod m,  c = (a - b) * inv2 mod m.
  const auto a = static_cast<std::int64_t>(d.leading);
  const auto b = static_cast<std::int64_t>(d.counter);
  const auto mm = static_cast<std::int64_t>(m_);
  const auto inv2 = static_cast<std::int64_t>(inv2_);
  const std::int64_t r = util::floor_mod((a + b) * inv2, mm);
  const std::int64_t c = util::floor_mod((a - b) * inv2, mm);
  return {static_cast<std::size_t>(r), static_cast<std::size_t>(c)};
}

}  // namespace pimecc::ecc
