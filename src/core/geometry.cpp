#include "core/geometry.hpp"

namespace pimecc::ecc {

namespace diagword {

std::uint64_t extract(std::span<const std::uint64_t> words, std::size_t bit0,
                      std::size_t m) noexcept {
  const std::size_t wi = bit0 / 64;
  const unsigned shift = static_cast<unsigned>(bit0 % 64);
  std::uint64_t seg = words[wi] >> shift;
  if (shift != 0 && shift + m > 64) {
    seg |= words[wi + 1] << (64u - shift);
  }
  return seg & low_mask(m);
}

std::uint64_t stride_permute(std::uint64_t seg, std::size_t s,
                             std::size_t m) noexcept {
  s %= m;  // the incremental dest reduction below requires s < m
  if (s == 1) return seg & low_mask(m);
  if (s == m - 1 && m > 1) return reflect(seg, m);
  std::uint64_t out = 0;
  std::size_t dest = 0;  // (s * j) mod m, maintained incrementally
  for (std::size_t j = 0; j < m; ++j) {
    out |= ((seg >> j) & 1u) << dest;
    dest += s;
    if (dest >= m) dest -= m;
  }
  return out;
}

bool segment_parity(std::span<const std::uint64_t> words, std::size_t bit0,
                    std::size_t len) noexcept {
  // XOR-accumulating words preserves popcount parity (XOR cancels common
  // bits in pairs), so one final popcount decides.
  const std::size_t end = bit0 + len;
  const std::size_t w_first = bit0 / 64;
  const std::size_t w_last = (end + 63) / 64;  // one past the last word
  std::uint64_t acc = 0;
  for (std::size_t w = w_first; w < w_last; ++w) {
    std::uint64_t v = words[w];
    if (w == w_first && bit0 % 64 != 0) v &= ~std::uint64_t{0} << (bit0 % 64);
    if (w + 1 == w_last && end % 64 != 0) v &= low_mask(end % 64);
    acc ^= v;
  }
  return (std::popcount(acc) & 1u) != 0;
}

}  // namespace diagword

DiagonalGeometry::DiagonalGeometry(std::size_t m) : m_(m), inv2_(0) {
  if (m == 0 || !util::is_odd(static_cast<std::int64_t>(m))) {
    throw std::invalid_argument(
        "DiagonalGeometry: block size m must be odd (paper footnote 1)");
  }
  inv2_ = static_cast<std::size_t>(util::inverse_of_two(static_cast<std::int64_t>(m)));
}

Cell DiagonalGeometry::locate(DiagonalPair d) const {
  if (d.leading >= m_ || d.counter >= m_) {
    throw std::out_of_range("DiagonalGeometry::locate: diagonal index out of range");
  }
  // r = (a + b) * inv2 mod m,  c = (a - b) * inv2 mod m.
  const auto a = static_cast<std::int64_t>(d.leading);
  const auto b = static_cast<std::int64_t>(d.counter);
  const auto mm = static_cast<std::int64_t>(m_);
  const auto inv2 = static_cast<std::int64_t>(inv2_);
  const std::int64_t r = util::floor_mod((a + b) * inv2, mm);
  const std::int64_t c = util::floor_mod((a - b) * inv2, mm);
  return {static_cast<std::size_t>(r), static_cast<std::size_t>(c)};
}

}  // namespace pimecc::ecc
