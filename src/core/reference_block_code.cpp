#include "core/reference_block_code.hpp"

#include <stdexcept>

namespace pimecc::ecc {

void ReferenceBlockCodec::require_window(const util::BitMatrix& data,
                                         std::size_t row0, std::size_t col0) const {
  if (row0 + m() > data.rows() || col0 + m() > data.cols()) {
    throw std::out_of_range("ReferenceBlockCodec: block window exceeds matrix bounds");
  }
}

CheckBits ReferenceBlockCodec::encode(const util::BitMatrix& data, std::size_t row0,
                                      std::size_t col0) const {
  require_window(data, row0, col0);
  CheckBits check(m());
  for (std::size_t r = 0; r < m(); ++r) {
    for (std::size_t c = 0; c < m(); ++c) {
      if (data.get(row0 + r, col0 + c)) {
        check.leading.flip(geometry_.leading(r, c));
        check.counter.flip(geometry_.counter(r, c));
      }
    }
  }
  return check;
}

Syndrome ReferenceBlockCodec::compute_syndrome(const util::BitMatrix& data,
                                               std::size_t row0, std::size_t col0,
                                               const CheckBits& stored) const {
  if (stored.leading.size() != m() || stored.counter.size() != m()) {
    throw std::invalid_argument("ReferenceBlockCodec: stored check bits have wrong size");
  }
  const CheckBits fresh = encode(data, row0, col0);
  Syndrome s(m());
  s.leading = fresh.leading ^ stored.leading;
  s.counter = fresh.counter ^ stored.counter;
  return s;
}

DecodeResult ReferenceBlockCodec::classify(const Syndrome& syndrome) const {
  DecodeResult result;
  const std::size_t nl = syndrome.leading.count();
  const std::size_t nc = syndrome.counter.count();
  if (nl == 0 && nc == 0) {
    result.status = DecodeStatus::kClean;
    return result;
  }
  if (nl == 1 && nc == 1) {
    // Single data-bit error: unique intersection of the two diagonals.
    const DiagonalPair pair{syndrome.leading.find_first(),
                            syndrome.counter.find_first()};
    result.status = DecodeStatus::kCorrectedData;
    result.data_error = geometry_.locate(pair);
    return result;
  }
  if (nl == 1 && nc == 0) {
    result.status = DecodeStatus::kCorrectedCheck;
    result.check_error = CheckBitLocation{true, syndrome.leading.find_first()};
    return result;
  }
  if (nl == 0 && nc == 1) {
    result.status = DecodeStatus::kCorrectedCheck;
    result.check_error = CheckBitLocation{false, syndrome.counter.find_first()};
    return result;
  }
  result.status = DecodeStatus::kDetectedUncorrectable;
  return result;
}

DecodeResult ReferenceBlockCodec::check_and_correct(util::BitMatrix& data,
                                                    std::size_t row0,
                                                    std::size_t col0,
                                                    CheckBits& stored) const {
  const Syndrome syndrome = compute_syndrome(data, row0, col0, stored);
  const DecodeResult result = classify(syndrome);
  switch (result.status) {
    case DecodeStatus::kCorrectedData: {
      const Cell cell = *result.data_error;
      data.flip(row0 + cell.r, col0 + cell.c);
      break;
    }
    case DecodeStatus::kCorrectedCheck: {
      const CheckBitLocation loc = *result.check_error;
      if (loc.on_leading_axis) {
        stored.leading.flip(loc.index);
      } else {
        stored.counter.flip(loc.index);
      }
      break;
    }
    case DecodeStatus::kClean:
    case DecodeStatus::kDetectedUncorrectable:
      break;
  }
  return result;
}

void ReferenceBlockCodec::update_for_write(CheckBits& check, std::size_t r,
                                           std::size_t c, bool old_value,
                                           bool new_value) const {
  if (old_value == new_value) return;
  check.leading.flip(geometry_.leading(r, c));
  check.counter.flip(geometry_.counter(r, c));
}

ScrubReport reference_scrub(const ReferenceBlockCodec& ref, util::BitMatrix& data,
                            std::vector<CheckBits>& stored, std::size_t bps) {
  ScrubReport report;
  const std::size_t m = ref.m();
  for (std::size_t br = 0; br < bps; ++br) {
    for (std::size_t bc = 0; bc < bps; ++bc) {
      const DecodeResult r =
          ref.check_and_correct(data, br * m, bc * m, stored[br * bps + bc]);
      ++report.blocks_checked;
      switch (r.status) {
        case DecodeStatus::kClean: ++report.clean; break;
        case DecodeStatus::kCorrectedData: ++report.corrected_data; break;
        case DecodeStatus::kCorrectedCheck: ++report.corrected_check; break;
        case DecodeStatus::kDetectedUncorrectable: ++report.uncorrectable; break;
      }
    }
  }
  return report;
}

MultiCheckBits reference_multislope_encode(const MultiSlopeCodec& codec,
                                           const util::BitMatrix& data,
                                           std::size_t row0, std::size_t col0) {
  const std::size_t m = codec.m();
  if (row0 + m > data.rows() || col0 + m > data.cols()) {
    throw std::out_of_range("reference_multislope_encode: block window exceeds bounds");
  }
  MultiCheckBits check;
  check.family_parity.assign(codec.families(), util::BitVector(m));
  for (std::size_t r = 0; r < m; ++r) {
    for (std::size_t c = 0; c < m; ++c) {
      if (!data.get(row0 + r, col0 + c)) continue;
      for (std::size_t f = 0; f < codec.families(); ++f) {
        check.family_parity[f].flip(codec.line_of(f, r, c));
      }
    }
  }
  return check;
}

bool reference_horizontal_group_parity(const util::BitMatrix& data, std::size_t r,
                                       std::size_t g, std::size_t group_size) {
  bool p = false;
  for (std::size_t i = 0; i < group_size; ++i) {
    p ^= data.at(r, g * group_size + i);
  }
  return p;
}

}  // namespace pimecc::ecc
