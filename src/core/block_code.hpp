// pimecc -- core/block_code.hpp
//
// Per-block diagonal parity code (paper Section III).
//
// For an m x m data block (m odd) the code stores 2m check bits: the parity
// of every leading wrap-around diagonal and of every counter wrap-around
// diagonal.  The resulting two-dimensional parity code provides
// single-error correction per block: a flipped data bit flags exactly one
// leading and one counter diagonal, whose intersection is unique for odd m;
// a flipped check bit flags exactly one diagonal on one axis only, which
// identifies the check bit itself.
#pragma once

#include <cstddef>
#include <optional>

#include "core/geometry.hpp"
#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"

namespace pimecc::ecc {

/// The 2m check bits of one block: one parity per leading diagonal and one
/// per counter diagonal.
struct CheckBits {
  util::BitVector leading;  ///< leading[i] = parity of leading diagonal i
  util::BitVector counter;  ///< counter[i] = parity of counter diagonal i

  explicit CheckBits(std::size_t m = 0) : leading(m), counter(m) {}
  bool operator==(const CheckBits&) const noexcept = default;
};

/// Difference between recomputed and stored parity per diagonal; all-zero
/// means the block is consistent.
struct Syndrome {
  util::BitVector leading;
  util::BitVector counter;

  explicit Syndrome(std::size_t m = 0) : leading(m), counter(m) {}
  [[nodiscard]] bool clean() const noexcept { return leading.none() && counter.none(); }
  bool operator==(const Syndrome&) const noexcept = default;
};

/// Outcome classification of decoding one block's syndrome.
enum class DecodeStatus : unsigned char {
  kClean,                  ///< no error signature
  kCorrectedData,          ///< single data-bit error located and corrected
  kCorrectedCheck,         ///< single check-bit error located and corrected
  kDetectedUncorrectable,  ///< multi-error signature; flagged but not fixed
};

[[nodiscard]] constexpr const char* to_string(DecodeStatus s) noexcept {
  switch (s) {
    case DecodeStatus::kClean: return "clean";
    case DecodeStatus::kCorrectedData: return "corrected-data";
    case DecodeStatus::kCorrectedCheck: return "corrected-check";
    case DecodeStatus::kDetectedUncorrectable: return "detected-uncorrectable";
  }
  return "?";
}

/// Which check bit erred, when DecodeStatus::kCorrectedCheck.
struct CheckBitLocation {
  bool on_leading_axis = false;  ///< true: leading[index]; false: counter[index]
  std::size_t index = 0;
  bool operator==(const CheckBitLocation&) const noexcept = default;
};

/// Full decode verdict for one block.
struct DecodeResult {
  DecodeStatus status = DecodeStatus::kClean;
  std::optional<Cell> data_error;            ///< set iff kCorrectedData
  std::optional<CheckBitLocation> check_error;  ///< set iff kCorrectedCheck
  bool operator==(const DecodeResult&) const noexcept = default;
};

/// Encoder/decoder for one block size m (odd).
///
/// The codec is pure: it owns no storage, operating on caller-provided
/// views.  The data view is any m x m window of a BitMatrix anchored at
/// (row0, col0).
///
/// This is the word-parallel production codec: parities are accumulated by
/// rotate-and-XOR over BitMatrix row words (O(m) word ops per block instead
/// of m*m bit reads; see diagword in core/geometry).  It must match the
/// bit-serial ReferenceBlockCodec (reference_block_code.hpp) exactly on any
/// input -- pinned by the differential suite in tests/test_codec_engine.cpp.
class BlockCodec {
 public:
  explicit BlockCodec(std::size_t m) : geometry_(m) {}

  [[nodiscard]] std::size_t m() const noexcept { return geometry_.m(); }
  [[nodiscard]] const DiagonalGeometry& geometry() const noexcept { return geometry_; }
  /// Check bits per block (2m).
  [[nodiscard]] std::size_t check_bit_count() const noexcept { return 2 * m(); }
  /// Total protected cells per block: m*m data + 2m check bits.
  [[nodiscard]] std::size_t cells_per_block() const noexcept {
    return m() * m() + 2 * m();
  }

  /// Computes the check bits of the m x m block anchored at (row0, col0).
  [[nodiscard]] CheckBits encode(const util::BitMatrix& data, std::size_t row0,
                                 std::size_t col0) const;

  /// Recomputed-vs-stored parity difference.
  [[nodiscard]] Syndrome compute_syndrome(const util::BitMatrix& data,
                                          std::size_t row0, std::size_t col0,
                                          const CheckBits& stored) const;

  /// Classifies a syndrome (no mutation).
  [[nodiscard]] DecodeResult classify(const Syndrome& syndrome) const;

  /// Checks the block and corrects in place: a single data-bit error is
  /// flipped back in `data`; a single check-bit error is flipped back in
  /// `stored`.  Returns the verdict.
  DecodeResult check_and_correct(util::BitMatrix& data, std::size_t row0,
                                 std::size_t col0, CheckBits& stored) const;

  /// Continuous-parity update for one cell write (paper Section III):
  /// applies delta = old ^ new to the two diagonals through (r, c), where
  /// r, c are block-relative (or absolute; reduced mod m).
  void update_for_write(CheckBits& check, std::size_t r, std::size_t c,
                        bool old_value, bool new_value) const;

 private:
  void require_window(const util::BitMatrix& data, std::size_t row0,
                      std::size_t col0) const;

  DiagonalGeometry geometry_;
};

}  // namespace pimecc::ecc
