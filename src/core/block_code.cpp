#include "core/block_code.hpp"

#include <array>
#include <stdexcept>

#include "util/simd.hpp"

namespace pimecc::ecc {

void BlockCodec::require_window(const util::BitMatrix& data, std::size_t row0,
                                std::size_t col0) const {
  if (row0 + m() > data.rows() || col0 + m() > data.cols()) {
    throw std::out_of_range("BlockCodec: block window exceeds matrix bounds");
  }
}

CheckBits BlockCodec::encode(const util::BitMatrix& data, std::size_t row0,
                             std::size_t col0) const {
  require_window(data, row0, col0);
  const std::size_t mm = m();
  CheckBits check(mm);
  if (mm > diagword::kMaxM) {
    // Bit-serial fallback for blocks wider than one word (matches
    // ReferenceBlockCodec::encode).
    for (std::size_t r = 0; r < mm; ++r) {
      for (std::size_t c = 0; c < mm; ++c) {
        if (data.get(row0 + r, col0 + c)) {
          check.leading.flip(geometry_.leading(r, c));
          check.counter.flip(geometry_.counter(r, c));
        }
      }
    }
    return check;
  }
  // Rotate-and-XOR accumulation over row words: row r contributes
  // rotl(seg, r) to the leading parities (bit c -> (r + c) mod m) and
  // rotr(seg, r) to a pre-reflection counter accumulator, reflected once
  // per block (bit c -> (r - c) mod m); see diagword in core/geometry.
  // The peel is dispatched (scalar/AVX2/AVX-512 by CPU).
  const std::span<const util::BitVector> rows = data.rows_span();
  std::array<const std::uint64_t*, diagword::kMaxM> ptrs;
  for (std::size_t r = 0; r < mm; ++r) ptrs[r] = rows[row0 + r].words().data();
  std::uint64_t lead = 0;
  std::uint64_t cnt = 0;
  util::simd::kernels().block_peel(ptrs.data(), mm, col0, &lead, &cnt);
  check.leading.set_low_word(lead);
  check.counter.set_low_word(diagword::reflect(cnt, mm));
  return check;
}

Syndrome BlockCodec::compute_syndrome(const util::BitMatrix& data, std::size_t row0,
                                      std::size_t col0, const CheckBits& stored) const {
  if (stored.leading.size() != m() || stored.counter.size() != m()) {
    throw std::invalid_argument("BlockCodec: stored check bits have wrong size");
  }
  const CheckBits fresh = encode(data, row0, col0);
  Syndrome s(m());
  s.leading = fresh.leading ^ stored.leading;
  s.counter = fresh.counter ^ stored.counter;
  return s;
}

DecodeResult BlockCodec::classify(const Syndrome& syndrome) const {
  DecodeResult result;
  const std::size_t nl = syndrome.leading.count();
  const std::size_t nc = syndrome.counter.count();
  if (nl == 0 && nc == 0) {
    result.status = DecodeStatus::kClean;
    return result;
  }
  if (nl == 1 && nc == 1) {
    // Single data-bit error: unique intersection of the two diagonals.
    const DiagonalPair pair{syndrome.leading.find_first(),
                            syndrome.counter.find_first()};
    result.status = DecodeStatus::kCorrectedData;
    result.data_error = geometry_.locate(pair);
    return result;
  }
  if (nl == 1 && nc == 0) {
    result.status = DecodeStatus::kCorrectedCheck;
    result.check_error = CheckBitLocation{true, syndrome.leading.find_first()};
    return result;
  }
  if (nl == 0 && nc == 1) {
    result.status = DecodeStatus::kCorrectedCheck;
    result.check_error = CheckBitLocation{false, syndrome.counter.find_first()};
    return result;
  }
  result.status = DecodeStatus::kDetectedUncorrectable;
  return result;
}

DecodeResult BlockCodec::check_and_correct(util::BitMatrix& data, std::size_t row0,
                                           std::size_t col0, CheckBits& stored) const {
  const Syndrome syndrome = compute_syndrome(data, row0, col0, stored);
  const DecodeResult result = classify(syndrome);
  switch (result.status) {
    case DecodeStatus::kCorrectedData: {
      const Cell cell = *result.data_error;
      data.flip(row0 + cell.r, col0 + cell.c);
      break;
    }
    case DecodeStatus::kCorrectedCheck: {
      const CheckBitLocation loc = *result.check_error;
      if (loc.on_leading_axis) {
        stored.leading.flip(loc.index);
      } else {
        stored.counter.flip(loc.index);
      }
      break;
    }
    case DecodeStatus::kClean:
    case DecodeStatus::kDetectedUncorrectable:
      break;
  }
  return result;
}

void BlockCodec::update_for_write(CheckBits& check, std::size_t r, std::size_t c,
                                  bool old_value, bool new_value) const {
  if (old_value == new_value) return;
  check.leading.flip(geometry_.leading(r, c));
  check.counter.flip(geometry_.counter(r, c));
}

}  // namespace pimecc::ecc
