#include "core/array_code.hpp"

#include <array>
#include <bit>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "util/simd.hpp"

namespace pimecc::ecc {

namespace {

/// Row word-pointer table for the dispatched kernels: rows
/// [row0, row0 + m) of `data`.  m <= diagword::kMaxM == 64.
std::array<const std::uint64_t*, diagword::kMaxM> row_ptrs(
    const util::BitMatrix& data, std::size_t row0, std::size_t m) {
  std::array<const std::uint64_t*, diagword::kMaxM> ptrs;
  const std::span<const util::BitVector> rows = data.rows_span();
  for (std::size_t r = 0; r < m; ++r) ptrs[r] = rows[row0 + r].words().data();
  return ptrs;
}

/// Accumulates the fresh per-block parity words of one block band (rows
/// [band_row0, band_row0 + m)): lead[bc]/cnt[bc] receive the leading and
/// counter parity of block column bc, counter already reflected into
/// diagonal order.  m <= diagword::kMaxM.  Dispatched (scalar/AVX2/AVX-512).
void accumulate_band(const util::BitMatrix& data, std::size_t band_row0,
                     std::size_t m, std::vector<std::uint64_t>& lead,
                     std::vector<std::uint64_t>& cnt) {
  const std::size_t bps = lead.size();
  const auto ptrs = row_ptrs(data, band_row0, m);
  util::simd::kernels().band_accumulate(ptrs.data(), m, bps, lead.data(),
                                        cnt.data());
  for (std::size_t bc = 0; bc < bps; ++bc) {
    cnt[bc] = diagword::reflect(cnt[bc], m);
  }
}

/// Fresh leading/counter parity words of the single block anchored at
/// (row0, col0), counter already reflected.  m <= diagword::kMaxM.
void accumulate_block(const util::BitMatrix& data, std::size_t row0,
                      std::size_t col0, std::size_t m, std::uint64_t& lead,
                      std::uint64_t& cnt) {
  const auto ptrs = row_ptrs(data, row0, m);
  util::simd::kernels().block_peel(ptrs.data(), m, col0, &lead, &cnt);
  cnt = diagword::reflect(cnt, m);
}

/// Folds one bit-serial DecodeResult into a ScrubReport.
void tally(ScrubReport& report, const DecodeResult& r) {
  ++report.blocks_checked;
  switch (r.status) {
    case DecodeStatus::kClean: ++report.clean; break;
    case DecodeStatus::kCorrectedData: ++report.corrected_data; break;
    case DecodeStatus::kCorrectedCheck: ++report.corrected_check; break;
    case DecodeStatus::kDetectedUncorrectable: ++report.uncorrectable; break;
  }
}

}  // namespace

ArrayCode::ArrayCode(std::size_t n, std::size_t m) : n_(n), codec_(m) {
  if (n == 0 || n % m != 0) {
    throw std::invalid_argument("ArrayCode: n must be a positive multiple of m");
  }
  blocks_.assign(block_count(), CheckBits(m));
}

std::size_t ArrayCode::flat_index(BlockIndex b) const {
  if (b.block_row >= blocks_per_side() || b.block_col >= blocks_per_side()) {
    throw std::out_of_range("ArrayCode: block index out of range");
  }
  return b.block_row * blocks_per_side() + b.block_col;
}

void ArrayCode::require_shape(const util::BitMatrix& data) const {
  if (data.rows() != n_ || data.cols() != n_) {
    throw std::invalid_argument("ArrayCode: data matrix must be n x n");
  }
}

const CheckBits& ArrayCode::check_bits(BlockIndex b) const {
  return blocks_[flat_index(b)];
}

CheckBits& ArrayCode::check_bits_mutable(BlockIndex b) {
  return blocks_[flat_index(b)];
}

void ArrayCode::encode_all(const util::BitMatrix& data) {
  require_shape(data);
  const std::size_t mm = m();
  const std::size_t bps = blocks_per_side();
  if (mm > diagword::kMaxM) {
    for (std::size_t br = 0; br < bps; ++br) {
      for (std::size_t bc = 0; bc < bps; ++bc) {
        blocks_[br * bps + bc] = codec_.encode(data, br * mm, bc * mm);
      }
    }
    return;
  }
  // Batch band path: each row of a block band is read once, its per-block
  // segments peeled and folded into all blocks of the band simultaneously.
  std::vector<std::uint64_t> lead(bps);
  std::vector<std::uint64_t> cnt(bps);
  for (std::size_t br = 0; br < bps; ++br) {
    accumulate_band(data, br * mm, mm, lead, cnt);
    for (std::size_t bc = 0; bc < bps; ++bc) {
      CheckBits& check = blocks_[br * bps + bc];
      check.leading.set_low_word(lead[bc]);
      check.counter.set_low_word(cnt[bc]);
    }
  }
}

void ArrayCode::apply_writes(const std::vector<CellWrite>& writes) {
  // Validate the whole batch before the first parity flip: a bad cell
  // mid-batch must not leave earlier writes half-applied.
  for (const CellWrite& w : writes) {
    if (w.r >= n_ || w.c >= n_) {
      throw std::out_of_range("ArrayCode::apply_writes: cell out of range");
    }
  }
  for (const CellWrite& w : writes) {
    CheckBits& check = blocks_[flat_index(block_of(w.r, w.c))];
    codec_.update_for_write(check, w.r % m(), w.c % m(), w.old_value, w.new_value);
  }
}

DecodeResult ArrayCode::check_block(util::BitMatrix& data, BlockIndex b) {
  require_shape(data);
  return codec_.check_and_correct(data, b.block_row * m(), b.block_col * m(),
                                  blocks_[flat_index(b)]);
}

ScrubReport ArrayCode::scrub(util::BitMatrix& data) {
  require_shape(data);
  ScrubReport report;
  const std::size_t mm = m();
  const std::size_t bps = blocks_per_side();
  if (mm > diagword::kMaxM) {
    for (std::size_t br = 0; br < bps; ++br) {
      for (std::size_t bc = 0; bc < bps; ++bc) {
        tally(report, check_block(data, {br, bc}));
      }
    }
    return report;
  }
  // Batch band path: fresh parities for all blocks of a band in one pass
  // over its rows, then per-block word-level syndrome classification
  // (blocks are disjoint, so correcting a data bit here cannot affect any
  // other block's already-computed parity).  Semantics identical to
  // check_block per block -- pinned by the differential suite.
  std::vector<std::uint64_t> lead(bps);
  std::vector<std::uint64_t> cnt(bps);
  for (std::size_t br = 0; br < bps; ++br) {
    accumulate_band(data, br * mm, mm, lead, cnt);
    for (std::size_t bc = 0; bc < bps; ++bc) {
      classify_and_repair(data, {br, bc}, lead[bc], cnt[bc], report);
    }
  }
  return report;
}

void ArrayCode::classify_and_repair(util::BitMatrix& data, BlockIndex b,
                                    std::uint64_t fresh_lead,
                                    std::uint64_t fresh_cnt, ScrubReport& report,
                                    BlockRepair* repair) {
  const std::size_t mm = m();
  CheckBits& stored = blocks_[b.block_row * blocks_per_side() + b.block_col];
  const std::uint64_t syn_lead = fresh_lead ^ stored.leading.low_word();
  const std::uint64_t syn_cnt = fresh_cnt ^ stored.counter.low_word();
  ++report.blocks_checked;
  if (syn_lead == 0 && syn_cnt == 0) {
    ++report.clean;
    if (repair) repair->status = DecodeStatus::kClean;
    return;
  }
  const int nl = std::popcount(syn_lead);
  const int nc = std::popcount(syn_cnt);
  if (nl == 1 && nc == 1) {
    const Cell cell = codec_.geometry().locate(
        {static_cast<std::size_t>(std::countr_zero(syn_lead)),
         static_cast<std::size_t>(std::countr_zero(syn_cnt))});
    data.flip(b.block_row * mm + cell.r, b.block_col * mm + cell.c);
    ++report.corrected_data;
    if (repair) {
      repair->status = DecodeStatus::kCorrectedData;
      repair->data_r = b.block_row * mm + cell.r;
      repair->data_c = b.block_col * mm + cell.c;
    }
  } else if (nl == 1 && nc == 0) {
    const auto index = static_cast<std::size_t>(std::countr_zero(syn_lead));
    stored.leading.flip(index);
    ++report.corrected_check;
    if (repair) {
      repair->status = DecodeStatus::kCorrectedCheck;
      repair->check_on_leading_axis = true;
      repair->check_index = index;
    }
  } else if (nl == 0 && nc == 1) {
    const auto index = static_cast<std::size_t>(std::countr_zero(syn_cnt));
    stored.counter.flip(index);
    ++report.corrected_check;
    if (repair) {
      repair->status = DecodeStatus::kCorrectedCheck;
      repair->check_on_leading_axis = false;
      repair->check_index = index;
    }
  } else {
    ++report.uncorrectable;
    if (repair) repair->status = DecodeStatus::kDetectedUncorrectable;
  }
}

BlockRepair ArrayCode::scrub_block(util::BitMatrix& data, BlockIndex b) {
  require_shape(data);
  const std::size_t mm = m();
  BlockRepair repair;
  if (mm > diagword::kMaxM) {
    // Bit-serial fallback via the per-block codec path; translate the
    // DecodeResult's block-relative coordinates to absolute ones.
    const DecodeResult r = check_block(data, b);
    repair.status = r.status;
    if (r.data_error) {
      repair.data_r = b.block_row * mm + r.data_error->r;
      repair.data_c = b.block_col * mm + r.data_error->c;
    }
    if (r.check_error) {
      repair.check_on_leading_axis = r.check_error->on_leading_axis;
      repair.check_index = r.check_error->index;
    }
    return repair;
  }
  (void)flat_index(b);  // bounds check before touching any state
  std::uint64_t lead = 0;
  std::uint64_t cnt = 0;
  accumulate_block(data, b.block_row * mm, b.block_col * mm, mm, lead, cnt);
  ScrubReport scratch;
  classify_and_repair(data, b, lead, cnt, scratch, &repair);
  return repair;
}

ScrubReport ArrayCode::scrub_band(util::BitMatrix& data, bool row_band,
                                  std::size_t band) {
  require_shape(data);
  const std::size_t bps = blocks_per_side();
  if (band >= bps) {
    throw std::out_of_range("ArrayCode::scrub_band: band out of range");
  }
  ScrubReport report;
  const std::size_t mm = m();
  if (mm > diagword::kMaxM) {
    for (std::size_t j = 0; j < bps; ++j) {
      const BlockIndex b = row_band ? BlockIndex{band, j} : BlockIndex{j, band};
      tally(report, check_block(data, b));
    }
    return report;
  }
  if (row_band) {
    std::vector<std::uint64_t> lead(bps);
    std::vector<std::uint64_t> cnt(bps);
    accumulate_band(data, band * mm, mm, lead, cnt);
    for (std::size_t bc = 0; bc < bps; ++bc) {
      classify_and_repair(data, {band, bc}, lead[bc], cnt[bc], report);
    }
  } else {
    for (std::size_t br = 0; br < bps; ++br) {
      std::uint64_t lead = 0;
      std::uint64_t cnt = 0;
      accumulate_block(data, br * mm, band * mm, mm, lead, cnt);
      classify_and_repair(data, {br, band}, lead, cnt, report);
    }
  }
  return report;
}

void ArrayCode::apply_line_delta(bool line_is_column, std::size_t line,
                                 const util::BitVector& delta) {
  if (line >= n_) {
    throw std::out_of_range("ArrayCode::apply_line_delta: line out of range");
  }
  if (delta.size() != n_) {
    throw std::invalid_argument("ArrayCode::apply_line_delta: delta must have length n");
  }
  const std::size_t mm = m();
  const std::size_t bps = blocks_per_side();
  const std::size_t band = line / mm;
  const std::size_t rem = line % mm;
  if (mm > diagword::kMaxM) {
    // Bit-serial fallback: one continuous-parity update per changed cell.
    for (std::size_t i = delta.find_first(); i < n_; i = delta.find_next(i)) {
      const std::size_t r = line_is_column ? i : line;
      const std::size_t c = line_is_column ? line : i;
      codec_.update_for_write(blocks_[flat_index(block_of(r, c))], r % mm,
                              c % mm, false, true);
    }
    return;
  }
  const std::span<const std::uint64_t> words = delta.words();
  for (std::size_t g = 0; g < bps; ++g) {
    const std::uint64_t dseg = diagword::extract(words, g * mm, mm);
    if (dseg == 0) continue;
    CheckBits& check =
        line_is_column ? blocks_[g * bps + band] : blocks_[band * bps + g];
    const std::uint64_t dlead = diagword::rotl(dseg, rem, mm);
    const std::uint64_t dcnt =
        line_is_column
            ? diagword::rotl(dseg, (mm - rem) % mm, mm)
            : diagword::rotl(diagword::stride_permute(dseg, mm - 1, mm), rem, mm);
    check.leading.set_low_word(check.leading.low_word() ^ dlead);
    check.counter.set_low_word(check.counter.low_word() ^ dcnt);
  }
}

bool ArrayCode::consistent_with(const util::BitMatrix& data) const {
  require_shape(data);
  const std::size_t mm = m();
  const std::size_t bps = blocks_per_side();
  if (mm > diagword::kMaxM) {
    for (std::size_t br = 0; br < bps; ++br) {
      for (std::size_t bc = 0; bc < bps; ++bc) {
        const CheckBits fresh = codec_.encode(data, br * mm, bc * mm);
        if (!(fresh == blocks_[br * bps + bc])) return false;
      }
    }
    return true;
  }
  std::vector<std::uint64_t> lead(bps);
  std::vector<std::uint64_t> cnt(bps);
  for (std::size_t br = 0; br < bps; ++br) {
    accumulate_band(data, br * mm, mm, lead, cnt);
    for (std::size_t bc = 0; bc < bps; ++bc) {
      const CheckBits& stored = blocks_[br * bps + bc];
      if (lead[bc] != stored.leading.low_word() ||
          cnt[bc] != stored.counter.low_word()) {
        return false;
      }
    }
  }
  return true;
}

bool ArrayCode::writes_touch_each_diagonal_once(
    const std::vector<CellWrite>& writes) const {
  // touched[block][axis][diag] as a flat bitmap.
  std::vector<bool> touched(block_count() * 2 * m(), false);
  for (const CellWrite& w : writes) {
    if (w.r >= n_ || w.c >= n_) return false;
    const std::size_t block = flat_index(block_of(w.r, w.c));
    const DiagonalPair d = codec_.geometry().diagonals(w.r % m(), w.c % m());
    const std::size_t lead_slot = (block * 2 + 0) * m() + d.leading;
    const std::size_t cnt_slot = (block * 2 + 1) * m() + d.counter;
    if (touched[lead_slot] || touched[cnt_slot]) return false;
    touched[lead_slot] = true;
    touched[cnt_slot] = true;
  }
  return true;
}

}  // namespace pimecc::ecc
