#include "core/array_code.hpp"

#include <stdexcept>

namespace pimecc::ecc {

ArrayCode::ArrayCode(std::size_t n, std::size_t m) : n_(n), codec_(m) {
  if (n == 0 || n % m != 0) {
    throw std::invalid_argument("ArrayCode: n must be a positive multiple of m");
  }
  blocks_.assign(block_count(), CheckBits(m));
}

std::size_t ArrayCode::flat_index(BlockIndex b) const {
  if (b.block_row >= blocks_per_side() || b.block_col >= blocks_per_side()) {
    throw std::out_of_range("ArrayCode: block index out of range");
  }
  return b.block_row * blocks_per_side() + b.block_col;
}

void ArrayCode::require_shape(const util::BitMatrix& data) const {
  if (data.rows() != n_ || data.cols() != n_) {
    throw std::invalid_argument("ArrayCode: data matrix must be n x n");
  }
}

const CheckBits& ArrayCode::check_bits(BlockIndex b) const {
  return blocks_[flat_index(b)];
}

CheckBits& ArrayCode::check_bits_mutable(BlockIndex b) {
  return blocks_[flat_index(b)];
}

void ArrayCode::encode_all(const util::BitMatrix& data) {
  require_shape(data);
  for (std::size_t br = 0; br < blocks_per_side(); ++br) {
    for (std::size_t bc = 0; bc < blocks_per_side(); ++bc) {
      blocks_[br * blocks_per_side() + bc] = codec_.encode(data, br * m(), bc * m());
    }
  }
}

void ArrayCode::apply_writes(const std::vector<CellWrite>& writes) {
  for (const CellWrite& w : writes) {
    if (w.r >= n_ || w.c >= n_) {
      throw std::out_of_range("ArrayCode::apply_writes: cell out of range");
    }
    CheckBits& check = blocks_[flat_index(block_of(w.r, w.c))];
    codec_.update_for_write(check, w.r % m(), w.c % m(), w.old_value, w.new_value);
  }
}

DecodeResult ArrayCode::check_block(util::BitMatrix& data, BlockIndex b) {
  require_shape(data);
  return codec_.check_and_correct(data, b.block_row * m(), b.block_col * m(),
                                  blocks_[flat_index(b)]);
}

ScrubReport ArrayCode::scrub(util::BitMatrix& data) {
  require_shape(data);
  ScrubReport report;
  for (std::size_t br = 0; br < blocks_per_side(); ++br) {
    for (std::size_t bc = 0; bc < blocks_per_side(); ++bc) {
      const DecodeResult r = check_block(data, {br, bc});
      ++report.blocks_checked;
      switch (r.status) {
        case DecodeStatus::kClean: ++report.clean; break;
        case DecodeStatus::kCorrectedData: ++report.corrected_data; break;
        case DecodeStatus::kCorrectedCheck: ++report.corrected_check; break;
        case DecodeStatus::kDetectedUncorrectable: ++report.uncorrectable; break;
      }
    }
  }
  return report;
}

bool ArrayCode::consistent_with(const util::BitMatrix& data) const {
  require_shape(data);
  for (std::size_t br = 0; br < blocks_per_side(); ++br) {
    for (std::size_t bc = 0; bc < blocks_per_side(); ++bc) {
      const CheckBits fresh = codec_.encode(data, br * m(), bc * m());
      if (!(fresh == blocks_[br * blocks_per_side() + bc])) return false;
    }
  }
  return true;
}

bool ArrayCode::writes_touch_each_diagonal_once(
    const std::vector<CellWrite>& writes) const {
  // touched[block][axis][diag] as a flat bitmap.
  std::vector<bool> touched(block_count() * 2 * m(), false);
  for (const CellWrite& w : writes) {
    if (w.r >= n_ || w.c >= n_) return false;
    const std::size_t block = flat_index(block_of(w.r, w.c));
    const DiagonalPair d = codec_.geometry().diagonals(w.r % m(), w.c % m());
    const std::size_t lead_slot = (block * 2 + 0) * m() + d.leading;
    const std::size_t cnt_slot = (block * 2 + 1) * m() + d.counter;
    if (touched[lead_slot] || touched[cnt_slot]) return false;
    touched[lead_slot] = true;
    touched[cnt_slot] = true;
  }
  return true;
}

}  // namespace pimecc::ecc
