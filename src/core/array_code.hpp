// pimecc -- core/array_code.hpp
//
// Whole-crossbar diagonal ECC state: an n x n array divided into an
// imaginary grid of (n/m) x (n/m) blocks of size m x m, with CheckBits per
// block (paper Section III).  This is the *functional* (golden) model of the
// Check Memory contents; src/arch models where those bits physically live
// and what each update costs in cycles.
#pragma once

#include <cstddef>
#include <vector>

#include "core/block_code.hpp"
#include "util/bitmatrix.hpp"

namespace pimecc::ecc {

/// Grid coordinates of a block.
struct BlockIndex {
  std::size_t block_row = 0;  ///< index of the block band, top to bottom
  std::size_t block_col = 0;  ///< index of the block band, left to right
  bool operator==(const BlockIndex&) const noexcept = default;
};

/// One cell write observed by the ECC layer (old value -> new value).
struct CellWrite {
  std::size_t r = 0;  ///< absolute row in the n x n array
  std::size_t c = 0;  ///< absolute column
  bool old_value = false;
  bool new_value = false;
};

/// Outcome of scrubbing a single block: the DecodeStatus plus where the
/// repair landed, in absolute array coordinates and without the
/// DecodeResult allocation.  Enough to undo the repair (flips are
/// involutions) or to compute a residual diff against a pre-fault image --
/// the sparse Monte Carlo engine's per-touched-block bookkeeping.
struct BlockRepair {
  DecodeStatus status = DecodeStatus::kClean;
  std::size_t data_r = 0;  ///< absolute row of the flipped data bit (kCorrectedData)
  std::size_t data_c = 0;  ///< absolute column of the flipped data bit (kCorrectedData)
  bool check_on_leading_axis = false;  ///< which family was repaired (kCorrectedCheck)
  std::size_t check_index = 0;         ///< diagonal index of the repaired check bit
  bool operator==(const BlockRepair&) const noexcept = default;
};

/// Summary of a whole-array scrub.
struct ScrubReport {
  std::size_t blocks_checked = 0;
  std::size_t clean = 0;
  std::size_t corrected_data = 0;
  std::size_t corrected_check = 0;
  std::size_t uncorrectable = 0;
  bool operator==(const ScrubReport&) const noexcept = default;
};

/// Diagonal-parity ECC over an n x n bit array (n divisible by odd m).
class ArrayCode {
 public:
  /// Throws std::invalid_argument unless m is odd and divides n.
  ArrayCode(std::size_t n, std::size_t m);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t m() const noexcept { return codec_.m(); }
  [[nodiscard]] std::size_t blocks_per_side() const noexcept { return n_ / m(); }
  [[nodiscard]] std::size_t block_count() const noexcept {
    return blocks_per_side() * blocks_per_side();
  }
  [[nodiscard]] const BlockCodec& codec() const noexcept { return codec_; }

  [[nodiscard]] BlockIndex block_of(std::size_t r, std::size_t c) const noexcept {
    return {r / m(), c / m()};
  }

  [[nodiscard]] const CheckBits& check_bits(BlockIndex b) const;
  [[nodiscard]] CheckBits& check_bits_mutable(BlockIndex b);

  /// Recomputes every block's check bits from `data` (n x n).  Batch band
  /// path (m <= diagword::kMaxM): walks each row band once and peels the
  /// per-block word segments, O(n * n/64) word ops instead of n*n bit reads.
  void encode_all(const util::BitMatrix& data);

  /// Continuous update for a batch of cell writes (one parallel MAGIC
  /// operation).  Θ(1) parity work per check bit -- asserted by tests via
  /// verify_theta1_property().
  void apply_writes(const std::vector<CellWrite>& writes);

  /// Checks one block against `data`, correcting single errors in place
  /// (data bit in `data`, check bit in this object).
  DecodeResult check_block(util::BitMatrix& data, BlockIndex b);

  /// Checks every block (the paper's periodic full-memory check).  Uses the
  /// same batch band path as encode_all, with word-level syndrome
  /// classification; semantics identical to check_block on every block.
  ScrubReport scrub(util::BitMatrix& data);

  /// Checks (and corrects, exactly like scrub) every block of one block-row
  /// (`row_band` true) or block-column -- the paper's before-use check of
  /// the band containing a line about to be operated on.  One band walk for
  /// a block-row; one per-block segment peel per band for a block-column.
  ScrubReport scrub_band(util::BitMatrix& data, bool row_band, std::size_t band);

  /// Checks (and corrects, exactly like scrub) the single block `b`:
  /// scrub_band generalized to block granularity, O(m) word ops.  Returns
  /// what was repaired and where, so a caller tracking its own fault set
  /// can compute the block's residual and roll the repair back.
  BlockRepair scrub_block(util::BitMatrix& data, BlockIndex b);

  /// Differential continuous update for one whole written line (the
  /// critical-operation protocol's steps 1+3 fused): `delta` is
  /// old XOR new of the line's n bits.  For a written column
  /// (`line_is_column`), block-row band g folds rotl(delta_seg, line mod m)
  /// into its leading family and rotl(delta_seg, -line mod m) into its
  /// counter family; for a written row the counter family is additionally
  /// reflected (stride m-1) -- one or two rotate+XORs per affected block,
  /// never a re-encode.  Validates before mutating any parity.
  void apply_line_delta(bool line_is_column, std::size_t line,
                        const util::BitVector& delta);

  /// True iff every check bit matches `data` exactly.
  [[nodiscard]] bool consistent_with(const util::BitMatrix& data) const;

  /// Section III invariant: within any single row-parallel or
  /// column-parallel operation, each (block, diagonal) is written at most
  /// once.  Returns false if `writes` violates it (meaning the batch could
  /// not have come from one parallel MAGIC op on distinct cells).
  [[nodiscard]] bool writes_touch_each_diagonal_once(
      const std::vector<CellWrite>& writes) const;

 private:
  [[nodiscard]] std::size_t flat_index(BlockIndex b) const;
  void require_shape(const util::BitMatrix& data) const;
  /// Word-level syndrome classification + in-place repair of one block given
  /// its freshly accumulated parity words (m <= diagword::kMaxM); the shared
  /// tail of scrub and scrub_band.
  void classify_and_repair(util::BitMatrix& data, BlockIndex b,
                           std::uint64_t fresh_lead, std::uint64_t fresh_cnt,
                           ScrubReport& report, BlockRepair* repair = nullptr);

  std::size_t n_;
  BlockCodec codec_;
  std::vector<CheckBits> blocks_;  // row-major over the block grid
};

}  // namespace pimecc::ecc
