// pimecc -- core/geometry.hpp
//
// Wrap-around diagonal geometry of an m x m block (paper Section III,
// Figure 2(b,c)).
//
// Cell (r, c) lies on:
//   leading diagonal  (bottom-left to top-right):  (r + c) mod m
//   counter diagonal  (bottom-right to top-left):  (r - c) mod m
//
// For odd m the map (r, c) -> (leading, counter) is a bijection: solving
// r + c = a, r - c = b (mod m) gives r = (a+b)/2, c = (a-b)/2 where the
// division is multiplication by inverse_of_two(m).  This is the paper's
// footnote-1 condition -- for even m two distinct cells can share both
// diagonals, destroying single-error *correction* (detection survives).
#pragma once

#include <cstddef>
#include <stdexcept>

#include "util/modmath.hpp"

namespace pimecc::ecc {

/// Location of a cell inside an m x m block.
struct Cell {
  std::size_t r = 0;
  std::size_t c = 0;
  bool operator==(const Cell&) const noexcept = default;
};

/// Pair of wrap-around diagonal indices identifying a cell (odd m).
struct DiagonalPair {
  std::size_t leading = 0;
  std::size_t counter = 0;
  bool operator==(const DiagonalPair&) const noexcept = default;
};

/// Diagonal index arithmetic for one block size m.
class DiagonalGeometry {
 public:
  /// Throws std::invalid_argument unless m is odd and >= 1 (footnote 1:
  /// odd m is required for diagonals to uniquely index cells).
  explicit DiagonalGeometry(std::size_t m);

  [[nodiscard]] std::size_t m() const noexcept { return m_; }

  /// Leading-diagonal index of (r, c); r and c are taken mod m so callers
  /// may pass absolute crossbar coordinates.
  [[nodiscard]] std::size_t leading(std::size_t r, std::size_t c) const noexcept {
    return (r + c) % m_;
  }

  /// Counter-diagonal index of (r, c).
  [[nodiscard]] std::size_t counter(std::size_t r, std::size_t c) const noexcept {
    return static_cast<std::size_t>(util::floor_mod(
        static_cast<std::int64_t>(r % m_) - static_cast<std::int64_t>(c % m_),
        static_cast<std::int64_t>(m_)));
  }

  [[nodiscard]] DiagonalPair diagonals(std::size_t r, std::size_t c) const noexcept {
    return {leading(r, c), counter(r, c)};
  }

  /// The unique cell lying on both the given leading and counter diagonal.
  /// Indices must be < m (checked).
  [[nodiscard]] Cell locate(DiagonalPair d) const;

 private:
  std::size_t m_;
  std::size_t inv2_;  // inverse of 2 mod m
};

}  // namespace pimecc::ecc
