// pimecc -- core/geometry.hpp
//
// Wrap-around diagonal geometry of an m x m block (paper Section III,
// Figure 2(b,c)).
//
// Cell (r, c) lies on:
//   leading diagonal  (bottom-left to top-right):  (r + c) mod m
//   counter diagonal  (bottom-right to top-left):  (r - c) mod m
//
// For odd m the map (r, c) -> (leading, counter) is a bijection: solving
// r + c = a, r - c = b (mod m) gives r = (a+b)/2, c = (a-b)/2 where the
// division is multiplication by inverse_of_two(m).  This is the paper's
// footnote-1 condition -- for even m two distinct cells can share both
// diagonals, destroying single-error *correction* (detection survives).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>

#include "util/modmath.hpp"
#include "util/simd.hpp"

namespace pimecc::ecc {

/// Word-level diagonal-extraction kernels shared by BlockCodec,
/// MultiSlopeCodec, and HorizontalCode.
///
/// A block row is an m-bit segment of a BitMatrix row; for m <= kMaxM it
/// fits in the low m bits of one 64-bit word.  In the polynomial view over
/// GF(2)[x]/(x^m - 1), row r of a block is p_r(x) and the slope-s parity
/// family (line (r + s*c) mod m) is sum_r x^r p_r(x^s).  Substituting once
/// per block instead of once per row gives the rotate-and-XOR scheme the
/// codecs build on:
///
///   family_s = stride_permute( XOR_r rotl(p_r, r * s^-1 mod m), s )
///
/// since stride_permute(rotl(p, r*s^-1), s) maps bit c to s*c + r.  The
/// paper's leading diagonals are s = 1 (identity permutation, plain
/// rotate-XOR accumulation) and the counter diagonals are s = m-1 (rotate
/// right, then one bit reflection per block).
namespace diagword {

/// Largest block size the single-word kernels handle; codecs fall back to
/// their bit-serial paths above this.
inline constexpr std::size_t kMaxM = 64;

/// Mask of the low m bits (m in [1, 64]).
[[nodiscard]] constexpr std::uint64_t low_mask(std::size_t m) noexcept {
  return util::simd::low_mask(m);
}

/// Rotates the low m bits of `seg` left by k: bit c -> (c + k) mod m.
/// Total: k is reduced mod m, stray bits of `seg` above position m are
/// discarded, and there is no shift-width UB at m == 64 (the former
/// `seg >> (m - k)` form shifted by 64 when k == 0 was only reachable with
/// k >= m, but the contract is now explicit rather than a caller burden).
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t seg, std::size_t k,
                                           std::size_t m) noexcept {
  return util::simd::rotl(seg, k, m);
}

/// Reflection of the low m bits: bit j -> (m - j) mod m.  Equivalent to
/// stride_permute(seg, m - 1, m) -- the counter-diagonal reordering -- in
/// O(1) word ops instead of the O(m) bit loop.
[[nodiscard]] constexpr std::uint64_t reflect(std::uint64_t seg,
                                              std::size_t m) noexcept {
  return util::simd::reflect(seg, m);
}

/// Extracts bits [bit0, bit0 + m) of a row's backing words as the low m
/// bits of one word (m <= 64).  The caller guarantees the range lies within
/// the row, so at most two words are touched.
[[nodiscard]] std::uint64_t extract(std::span<const std::uint64_t> words,
                                    std::size_t bit0, std::size_t m) noexcept;

/// Applies the stride permutation bit j -> (s * j) mod m to the low m bits
/// (s reduced mod m; for parity use s must be coprime to m).  The two
/// slopes the paper's codec actually uses short-circuit to O(1): s = 1 is
/// the identity and s = m-1 is reflect(); other strides take the O(m) bit
/// loop (used once per block, not per row).
[[nodiscard]] std::uint64_t stride_permute(std::uint64_t seg, std::size_t s,
                                           std::size_t m) noexcept;

/// XOR-reduction (parity) of bits [bit0, bit0 + len) of a row's backing
/// words; any length, word-parallel.  The caller guarantees the range lies
/// within the row.
[[nodiscard]] bool segment_parity(std::span<const std::uint64_t> words,
                                  std::size_t bit0, std::size_t len) noexcept;

}  // namespace diagword

/// Location of a cell inside an m x m block.
struct Cell {
  std::size_t r = 0;
  std::size_t c = 0;
  bool operator==(const Cell&) const noexcept = default;
};

/// Pair of wrap-around diagonal indices identifying a cell (odd m).
struct DiagonalPair {
  std::size_t leading = 0;
  std::size_t counter = 0;
  bool operator==(const DiagonalPair&) const noexcept = default;
};

/// Diagonal index arithmetic for one block size m.
class DiagonalGeometry {
 public:
  /// Throws std::invalid_argument unless m is odd and >= 1 (footnote 1:
  /// odd m is required for diagonals to uniquely index cells).
  explicit DiagonalGeometry(std::size_t m);

  [[nodiscard]] std::size_t m() const noexcept { return m_; }

  /// Leading-diagonal index of (r, c); r and c are taken mod m so callers
  /// may pass absolute crossbar coordinates.
  [[nodiscard]] std::size_t leading(std::size_t r, std::size_t c) const noexcept {
    return (r + c) % m_;
  }

  /// Counter-diagonal index of (r, c).
  [[nodiscard]] std::size_t counter(std::size_t r, std::size_t c) const noexcept {
    return static_cast<std::size_t>(util::floor_mod(
        static_cast<std::int64_t>(r % m_) - static_cast<std::int64_t>(c % m_),
        static_cast<std::int64_t>(m_)));
  }

  [[nodiscard]] DiagonalPair diagonals(std::size_t r, std::size_t c) const noexcept {
    return {leading(r, c), counter(r, c)};
  }

  /// The unique cell lying on both the given leading and counter diagonal.
  /// Indices must be < m (checked).
  [[nodiscard]] Cell locate(DiagonalPair d) const;

 private:
  std::size_t m_;
  std::size_t inv2_;  // inverse of 2 mod m
};

}  // namespace pimecc::ecc
