// pimecc -- core/horizontal_code.hpp
//
// The strawman ECC of paper Section III / Figure 2(a): parity computed over
// *horizontal* groups of g data bits (e.g. the eighth bit of every byte).
//
// It exists here as the comparison baseline for the update-cost argument:
// a row-parallel MAGIC op touches each horizontal group at most once
// (Θ(1) update), but a column-parallel op writes an entire row at once, so
// one group has all g of its data bits changed and the check bit needs the
// whole group re-read -- Θ(g) update cycles (Θ(n) for whole-row groups).
#pragma once

#include <cstddef>
#include <vector>

#include "core/array_code.hpp"  // CellWrite
#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"

namespace pimecc::ecc {

/// Horizontal parity over groups of `group_size` consecutive bits in a row.
class HorizontalCode {
 public:
  /// Throws std::invalid_argument unless group_size divides n (both > 0).
  HorizontalCode(std::size_t n, std::size_t group_size);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t group_size() const noexcept { return group_; }
  [[nodiscard]] std::size_t groups_per_row() const noexcept { return n_ / group_; }

  /// Recomputes every group parity from `data` (n x n).
  void encode_all(const util::BitMatrix& data);

  /// Stored parity of group `g` in row `r`.
  [[nodiscard]] bool parity(std::size_t r, std::size_t g) const;

  /// Continuous update, mirroring ArrayCode::apply_writes.
  void apply_writes(const std::vector<CellWrite>& writes);

  /// True iff all stored parities match `data`.
  [[nodiscard]] bool consistent_with(const util::BitMatrix& data) const;

  /// Detection-only check of one group; horizontal parity has no correction
  /// capability (one parity bit cannot locate the error inside the group).
  [[nodiscard]] bool group_has_error(const util::BitMatrix& data, std::size_t r,
                                     std::size_t g) const;

  /// Paper Section III cost model: number of *data-bit reads* needed to
  /// bring all check bits up to date after one parallel operation, when
  /// parity is maintained incrementally.  A group with exactly one changed
  /// bit costs 1 (XOR of the delta); a group with more than one changed bit
  /// must be re-read in full, costing group_size reads.  A row-parallel op
  /// therefore costs Θ(#writes); a column-parallel op that rewrote a whole
  /// row costs Θ(n) for the single spanned row.
  [[nodiscard]] std::size_t update_cost_reads(
      const std::vector<CellWrite>& writes) const;

 private:
  [[nodiscard]] std::size_t slot(std::size_t r, std::size_t g) const;

  std::size_t n_;
  std::size_t group_;
  util::BitVector parities_;  // row-major [row][group]
};

}  // namespace pimecc::ecc
