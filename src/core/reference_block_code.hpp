// pimecc -- core/reference_block_code.hpp
//
// Bit-serial golden model of the diagonal-parity block codec.
//
// This is the original scalar codec, retained verbatim: every parity is
// accumulated one BitMatrix::get at a time.  It exists purely as the
// reference in differential tests and benchmarks -- the production codec is
// the word-parallel BlockCodec (block_code.hpp), which must match this
// model exactly in CheckBits, Syndromes, DecodeResults, and applied
// corrections on any input.  Keep the two classes' public APIs identical
// (the same contract as xbar::ReferenceCrossbar vs xbar::Crossbar).
//
// The file also hosts the bit-serial reference accumulations for the other
// two parity codes, so their word-parallel paths are pinned the same way.
#pragma once

#include <cstddef>
#include <vector>

#include "core/array_code.hpp"  // ScrubReport
#include "core/block_code.hpp"
#include "core/geometry.hpp"
#include "core/multislope_code.hpp"
#include "util/bitmatrix.hpp"

namespace pimecc::ecc {

/// Bit-serial twin of BlockCodec; see file comment.
class ReferenceBlockCodec {
 public:
  explicit ReferenceBlockCodec(std::size_t m) : geometry_(m) {}

  [[nodiscard]] std::size_t m() const noexcept { return geometry_.m(); }
  [[nodiscard]] const DiagonalGeometry& geometry() const noexcept { return geometry_; }
  [[nodiscard]] std::size_t check_bit_count() const noexcept { return 2 * m(); }
  [[nodiscard]] std::size_t cells_per_block() const noexcept {
    return m() * m() + 2 * m();
  }

  [[nodiscard]] CheckBits encode(const util::BitMatrix& data, std::size_t row0,
                                 std::size_t col0) const;

  [[nodiscard]] Syndrome compute_syndrome(const util::BitMatrix& data,
                                          std::size_t row0, std::size_t col0,
                                          const CheckBits& stored) const;

  [[nodiscard]] DecodeResult classify(const Syndrome& syndrome) const;

  DecodeResult check_and_correct(util::BitMatrix& data, std::size_t row0,
                                 std::size_t col0, CheckBits& stored) const;

  void update_for_write(CheckBits& check, std::size_t r, std::size_t c,
                        bool old_value, bool new_value) const;

 private:
  void require_window(const util::BitMatrix& data, std::size_t row0,
                      std::size_t col0) const;

  DiagonalGeometry geometry_;
};

/// Bit-serial whole-array scrub: ReferenceBlockCodec::check_and_correct on
/// every block of an (m*bps) x (m*bps) array, aggregated exactly like
/// ArrayCode::scrub.  `stored` is row-major over the block grid (bps*bps
/// entries) and is corrected in place alongside `data`.
[[nodiscard]] ScrubReport reference_scrub(const ReferenceBlockCodec& ref,
                                          util::BitMatrix& data,
                                          std::vector<CheckBits>& stored,
                                          std::size_t bps);

/// Bit-serial reference of MultiSlopeCodec::encode (per-cell line_of flips).
[[nodiscard]] MultiCheckBits reference_multislope_encode(
    const MultiSlopeCodec& codec, const util::BitMatrix& data, std::size_t row0,
    std::size_t col0);

/// Bit-serial reference of one HorizontalCode group parity: XOR of bits
/// [g*group_size, (g+1)*group_size) of row r.
[[nodiscard]] bool reference_horizontal_group_parity(const util::BitMatrix& data,
                                                     std::size_t r, std::size_t g,
                                                     std::size_t group_size);

}  // namespace pimecc::ecc
