#include "core/horizontal_code.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "core/geometry.hpp"  // diagword::segment_parity

namespace pimecc::ecc {

HorizontalCode::HorizontalCode(std::size_t n, std::size_t group_size)
    : n_(n), group_(group_size), parities_() {
  if (n == 0 || group_size == 0 || n % group_size != 0) {
    throw std::invalid_argument(
        "HorizontalCode: group size must divide n (both positive)");
  }
  parities_.resize(n_ * groups_per_row());
}

std::size_t HorizontalCode::slot(std::size_t r, std::size_t g) const {
  if (r >= n_ || g >= groups_per_row()) {
    throw std::out_of_range("HorizontalCode: slot out of range");
  }
  return r * groups_per_row() + g;
}

void HorizontalCode::encode_all(const util::BitMatrix& data) {
  if (data.rows() != n_ || data.cols() != n_) {
    throw std::invalid_argument("HorizontalCode: data matrix must be n x n");
  }
  // Word-parallel: each group parity is one XOR-accumulate + popcount over
  // the row's backing words instead of group_ bit reads.
  const std::size_t gpr = groups_per_row();
  const std::span<const util::BitVector> rows = data.rows_span();
  for (std::size_t r = 0; r < n_; ++r) {
    const std::span<const std::uint64_t> words = rows[r].words();
    for (std::size_t g = 0; g < gpr; ++g) {
      parities_.set(r * gpr + g,
                    diagword::segment_parity(words, g * group_, group_));
    }
  }
}

bool HorizontalCode::parity(std::size_t r, std::size_t g) const {
  return parities_.get(slot(r, g));
}

void HorizontalCode::apply_writes(const std::vector<CellWrite>& writes) {
  // Validate the whole batch before the first parity flip: a bad cell
  // mid-batch must not leave earlier writes half-applied.
  for (const CellWrite& w : writes) {
    if (w.r >= n_ || w.c >= n_) {
      throw std::out_of_range("HorizontalCode::apply_writes: cell out of range");
    }
  }
  for (const CellWrite& w : writes) {
    if (w.old_value != w.new_value) {
      parities_.flip(slot(w.r, w.c / group_));
    }
  }
}

bool HorizontalCode::consistent_with(const util::BitMatrix& data) const {
  if (data.rows() != n_ || data.cols() != n_) {
    throw std::invalid_argument("HorizontalCode: data matrix must be n x n");
  }
  const std::size_t gpr = groups_per_row();
  const std::span<const util::BitVector> rows = data.rows_span();
  for (std::size_t r = 0; r < n_; ++r) {
    const std::span<const std::uint64_t> words = rows[r].words();
    for (std::size_t g = 0; g < gpr; ++g) {
      if (diagword::segment_parity(words, g * group_, group_) !=
          parities_.get(r * gpr + g)) {
        return false;
      }
    }
  }
  return true;
}

bool HorizontalCode::group_has_error(const util::BitMatrix& data, std::size_t r,
                                     std::size_t g) const {
  const std::size_t s = slot(r, g);  // validates r and g
  if (data.rows() != n_ || data.cols() != n_) {
    throw std::invalid_argument("HorizontalCode: data matrix must be n x n");
  }
  return diagword::segment_parity(data.rows_span()[r].words(), g * group_,
                                       group_) != parities_.get(s);
}

std::size_t HorizontalCode::update_cost_reads(
    const std::vector<CellWrite>& writes) const {
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> changed_per_group;
  for (const CellWrite& w : writes) {
    if (w.old_value != w.new_value) {
      ++changed_per_group[{w.r, w.c / group_}];
    }
  }
  std::size_t cost = 0;
  for (const auto& [group, changed] : changed_per_group) {
    cost += changed == 1 ? 1 : group_;
  }
  return cost;
}

}  // namespace pimecc::ecc
