#include "core/horizontal_code.hpp"

#include <map>
#include <stdexcept>
#include <utility>

namespace pimecc::ecc {

HorizontalCode::HorizontalCode(std::size_t n, std::size_t group_size)
    : n_(n), group_(group_size), parities_() {
  if (n == 0 || group_size == 0 || n % group_size != 0) {
    throw std::invalid_argument(
        "HorizontalCode: group size must divide n (both positive)");
  }
  parities_.resize(n_ * groups_per_row());
}

std::size_t HorizontalCode::slot(std::size_t r, std::size_t g) const {
  if (r >= n_ || g >= groups_per_row()) {
    throw std::out_of_range("HorizontalCode: slot out of range");
  }
  return r * groups_per_row() + g;
}

void HorizontalCode::encode_all(const util::BitMatrix& data) {
  if (data.rows() != n_ || data.cols() != n_) {
    throw std::invalid_argument("HorizontalCode: data matrix must be n x n");
  }
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t g = 0; g < groups_per_row(); ++g) {
      bool p = false;
      for (std::size_t i = 0; i < group_; ++i) {
        p ^= data.get(r, g * group_ + i);
      }
      parities_.set(slot(r, g), p);
    }
  }
}

bool HorizontalCode::parity(std::size_t r, std::size_t g) const {
  return parities_.get(slot(r, g));
}

void HorizontalCode::apply_writes(const std::vector<CellWrite>& writes) {
  for (const CellWrite& w : writes) {
    if (w.r >= n_ || w.c >= n_) {
      throw std::out_of_range("HorizontalCode::apply_writes: cell out of range");
    }
    if (w.old_value != w.new_value) {
      parities_.flip(slot(w.r, w.c / group_));
    }
  }
}

bool HorizontalCode::consistent_with(const util::BitMatrix& data) const {
  if (data.rows() != n_ || data.cols() != n_) {
    throw std::invalid_argument("HorizontalCode: data matrix must be n x n");
  }
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t g = 0; g < groups_per_row(); ++g) {
      bool p = false;
      for (std::size_t i = 0; i < group_; ++i) {
        p ^= data.get(r, g * group_ + i);
      }
      if (p != parities_.get(r * groups_per_row() + g)) return false;
    }
  }
  return true;
}

bool HorizontalCode::group_has_error(const util::BitMatrix& data, std::size_t r,
                                     std::size_t g) const {
  bool p = false;
  for (std::size_t i = 0; i < group_; ++i) {
    p ^= data.at(r, g * group_ + i);
  }
  return p != parities_.get(slot(r, g));
}

std::size_t HorizontalCode::update_cost_reads(
    const std::vector<CellWrite>& writes) const {
  std::map<std::pair<std::size_t, std::size_t>, std::size_t> changed_per_group;
  for (const CellWrite& w : writes) {
    if (w.old_value != w.new_value) {
      ++changed_per_group[{w.r, w.c / group_}];
    }
  }
  std::size_t cost = 0;
  for (const auto& [group, changed] : changed_per_group) {
    cost += changed == 1 ? 1 : group_;
  }
  return cost;
}

}  // namespace pimecc::ecc
