// pimecc -- core/multislope_code.hpp
//
// Generalization of the paper's two-family diagonal code (Section III,
// trade-off bullet 1: "the code used for check-bits along a diagonal...
// increased complexity leads to increased reliability at the cost of more
// complex calculations and more overhead"; ref [16], multidimensional
// codes).
//
// Family s assigns cell (r, c) to line (r + s*c) mod m.  Any slope s with
// gcd(s, m) = 1 partitions the block into m parallel wrap-around lines,
// and -- crucially for PIM -- a row- or column-parallel MAGIC operation
// still touches each line of each family at most once, so the Θ(1)
// continuous-update property is preserved for every family
// simultaneously.  The paper's code is the special case slopes = {+1, -1}
// (leading and counter diagonals).
//
// More families buy more correction: K families give K syndrome
// coordinates per error.  Decoding searches for the smallest error set
// consistent with all K family syndromes; with K = 4 (slopes ±1, ±2) most
// double errors in a block become correctable instead of merely
// detectable.  bench_multislope quantifies the reliability-vs-storage
// trade-off against the paper's K = 2.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"

namespace pimecc::ecc {

/// Check bits of one block under K slope families: K*m parity bits.
struct MultiCheckBits {
  /// family_parity[f] has m bits: the parity of each line of family f.
  std::vector<util::BitVector> family_parity;

  bool operator==(const MultiCheckBits&) const noexcept = default;
};

/// Decode outcome for one block.
enum class MultiDecodeStatus : unsigned char {
  kClean,
  kCorrected,              ///< a unique smallest error set was applied
  kDetectedUncorrectable,  ///< inconsistent or ambiguous syndromes
};

struct MultiDecodeResult {
  MultiDecodeStatus status = MultiDecodeStatus::kClean;
  /// Data cells flipped back (block-relative), when kCorrected.
  std::vector<std::pair<std::size_t, std::size_t>> corrected_cells;
  /// Check bits repaired in `stored`, when kCorrected with no data error.
  std::size_t corrected_check_bits = 0;
};

/// Per-block encoder/decoder over K slope families.
class MultiSlopeCodec {
 public:
  /// `slopes` are taken mod m; each must be coprime to m and pairwise
  /// distinct mod m.  Throws std::invalid_argument otherwise.  The paper's
  /// diagonal code is MultiSlopeCodec(m, {1, m-1}).
  MultiSlopeCodec(std::size_t m, std::vector<std::size_t> slopes);

  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  [[nodiscard]] std::size_t families() const noexcept { return slopes_.size(); }
  [[nodiscard]] const std::vector<std::size_t>& slopes() const noexcept {
    return slopes_;
  }
  /// Check bits per block: K * m.
  [[nodiscard]] std::size_t check_bit_count() const noexcept {
    return families() * m_;
  }
  /// Storage overhead relative to the m*m data bits.
  [[nodiscard]] double storage_overhead() const noexcept {
    return static_cast<double>(check_bit_count()) /
           static_cast<double>(m_ * m_);
  }

  /// Line index of cell (r, c) in family f.
  [[nodiscard]] std::size_t line_of(std::size_t f, std::size_t r,
                                    std::size_t c) const;

  [[nodiscard]] MultiCheckBits encode(const util::BitMatrix& data,
                                      std::size_t row0, std::size_t col0) const;

  /// Continuous-parity update for one cell write (Θ(1) per family).
  void update_for_write(MultiCheckBits& check, std::size_t r, std::size_t c,
                        bool old_value, bool new_value) const;

  /// Checks and corrects in place.  Decoding searches error sets of size
  /// 0, 1, then 2 for a *unique* set whose per-family line flips match the
  /// syndrome; ambiguity or exhaustion reports kDetectedUncorrectable.
  /// Pure check-bit corruption (some families clean, few flags) repairs
  /// `stored` instead.  With the paper's K = 2 all double data errors are
  /// ambiguous (detection only); K >= 3 makes most of them correctable.
  MultiDecodeResult check_and_correct(util::BitMatrix& data, std::size_t row0,
                                      std::size_t col0,
                                      MultiCheckBits& stored) const;

  /// Maximum error-set size the decoder searches.
  [[nodiscard]] std::size_t max_search_errors() const noexcept {
    return families() >= 2 ? 2 : 1;
  }

 private:
  void require_window(const util::BitMatrix& data, std::size_t row0,
                      std::size_t col0) const;
  /// Syndrome = recomputed XOR stored, per family.
  [[nodiscard]] std::vector<util::BitVector> syndrome(
      const util::BitMatrix& data, std::size_t row0, std::size_t col0,
      const MultiCheckBits& stored) const;
  /// Whether flipping exactly `cells` explains the syndrome.
  [[nodiscard]] bool explains(
      const std::vector<util::BitVector>& syn,
      const std::vector<std::pair<std::size_t, std::size_t>>& cells) const;

  std::size_t m_;
  std::vector<std::size_t> slopes_;
  /// Modular inverse of each slope mod m (slopes are coprime to m), used by
  /// the word-parallel encoder: family f accumulates rotl(row_r, r * inv_f)
  /// then applies one stride-f permutation per block (see diagword in
  /// core/geometry).
  std::vector<std::size_t> inv_slopes_;
};

}  // namespace pimecc::ecc
