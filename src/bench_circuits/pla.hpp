// pimecc -- bench_circuits/pla.hpp
//
// Two-level programmable-logic-array synthesis: the substrate for the
// table-driven benchmarks (cavlc, ctrl).  A PLA spec is a list of product
// terms over the inputs; each output is the OR of its terms.  In NOR-only
// form this is the classic NOR-NOR two-level structure.
#pragma once

#include <cstdint>
#include <vector>

#include "simpler/logic.hpp"
#include "util/bitvector.hpp"

namespace pimecc::circuits {

/// One product term: matches when (x & care_mask) == match_value; drives
/// the outputs whose bit is set in output_mask.
struct PlaTerm {
  std::uint32_t care_mask = 0;
  std::uint32_t match_value = 0;
  std::uint32_t output_mask = 0;
};

/// Complete PLA description (up to 32 inputs / 32 outputs).
struct PlaSpec {
  std::size_t num_inputs = 0;
  std::size_t num_outputs = 0;
  std::vector<PlaTerm> terms;
};

/// Synthesizes the PLA into `builder`'s netlist; returns the output nodes
/// (not yet marked as primary outputs).
[[nodiscard]] simpler::Bus synthesize_pla(simpler::LogicBuilder& builder,
                                          const simpler::Bus& inputs,
                                          const PlaSpec& spec);

/// Reference evaluation of the PLA spec.
[[nodiscard]] util::BitVector eval_pla(const PlaSpec& spec,
                                       const util::BitVector& inputs);

/// Deterministically generates a pseudo-random but fixed PLA with the given
/// shape (used to stand in for the EPFL table-logic benchmarks whose exact
/// tables are not redistributable here).  Same seed => same spec.
[[nodiscard]] PlaSpec make_table_pla(std::size_t num_inputs, std::size_t num_outputs,
                                     std::size_t num_terms, std::uint64_t seed);

}  // namespace pimecc::circuits
