// Benchmark `ctrl`: controller decode logic (EPFL shape: 7 PI / 26 PO).
//
// Stands in for the EPFL ALU control unit: a small fixed PLA mapping a
// 7-bit opcode field to 26 control lines (see cavlc.cpp for the
// substitution rationale).
#include "bench_circuits/circuits.hpp"

#include "bench_circuits/pla.hpp"
#include "simpler/logic.hpp"

namespace pimecc::circuits {

CircuitSpec build_ctrl() {
  CircuitSpec spec;
  spec.name = "ctrl";
  const PlaSpec pla = make_table_pla(7, 26, 24, /*seed=*/0xC09ull);
  simpler::Netlist netlist("ctrl");
  simpler::LogicBuilder b(netlist);
  const simpler::Bus inputs = b.input_bus(pla.num_inputs);
  b.output_bus(synthesize_pla(b, inputs, pla));
  spec.netlist = std::move(netlist);
  spec.reference = [pla](const util::BitVector& in) { return eval_pla(pla, in); };
  return spec;
}

}  // namespace pimecc::circuits
