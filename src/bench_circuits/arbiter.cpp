// Benchmark `arbiter`: 64-client rotating-priority (round-robin) arbiter
// (EPFL analogue; see circuits.hpp note on sizing -- at 56 clients the
// per-client chain structure lands at the EPFL arbiter's ~12.8k-cycle
// baseline).  Inputs: 64 request lines and a 64-bit one-hot priority
// pointer.  Outputs: 64 one-hot grant lines plus a valid flag.  Semantics:
// grant the first requester at or after the head position, searching
// cyclically; with no pointer bit set the head defaults to position 0 (a
// malformed multi-hot pointer grants the union, one winner per head).
//
// Each client evaluates a private eligibility chain
//   A_k = head[pos_k] OR (A_{k+1} AND NOT req[pos_{k+1}])
// walking inward from the farthest position; chain nodes have fanout one,
// so live values stay bounded and the function fits SIMPLER's single-row
// execution model.
#include "bench_circuits/circuits.hpp"

#include "bench_circuits/ref_util.hpp"
#include "simpler/logic.hpp"

namespace pimecc::circuits {

namespace {
constexpr std::size_t kClients = 56;
}  // namespace

CircuitSpec build_arbiter() {
  CircuitSpec spec;
  spec.name = "arbiter";
  simpler::Netlist netlist("arbiter");
  simpler::LogicBuilder b(netlist);
  const simpler::Bus req = b.input_bus(kClients);
  const simpler::Bus ptr = b.input_bus(kClients);

  // head[j]: position j is a priority head.
  const simpler::NodeId no_ptr =
      b.nor_gate(std::span<const simpler::NodeId>(ptr));
  simpler::Bus head = ptr;
  head[0] = b.or2(ptr[0], no_ptr);

  simpler::Bus grant(kClients);
  for (std::size_t i = 0; i < kClients; ++i) {
    // pos_k = (i - k) mod N; start from the farthest head position.
    simpler::NodeId acc = head[(i + 1) % kClients];
    for (std::size_t k = kClients - 2; k + 1 > 0; --k) {
      const std::size_t pos = (i + kClients - k) % kClients;
      const std::size_t prev = (i + kClients - k - 1) % kClients;
      // A AND NOT req[prev] = NOR(NOT A, req[prev]).
      const simpler::NodeId carried = b.nor2(b.not_gate(acc), req[prev]);
      acc = b.or2(head[pos], carried);
    }
    grant[i] = b.and2(req[i], acc);
  }
  b.output_bus(grant);
  b.output(b.or_gate(std::span<const simpler::NodeId>(req)));  // valid

  spec.netlist = std::move(netlist);
  // Reference mirrors the netlist semantics exactly.
  spec.reference = [](const util::BitVector& in) {
    util::BitVector out(kClients + 1);
    bool any = false;
    bool any_ptr = false;
    for (std::size_t i = 0; i < kClients; ++i) {
      any = any || in.get(i);
      any_ptr = any_ptr || in.get(kClients + i);
    }
    out.set(kClients, any);
    for (std::size_t j = 0; j < kClients; ++j) {
      const bool is_head = in.get(kClients + j) || (j == 0 && !any_ptr);
      if (!is_head) continue;
      for (std::size_t t = 0; t < kClients; ++t) {
        const std::size_t i = (j + t) % kClients;
        if (in.get(i)) {
          out.set(i, true);
          break;
        }
      }
    }
    return out;
  };
  return spec;
}

}  // namespace pimecc::circuits
