// pimecc -- bench_circuits/ref_util.hpp
//
// Small helpers shared by the reference models: BitVector <-> integer
// packing (LSB-first, matching Bus bit order).
#pragma once

#include <cstdint>
#include <cstddef>

#include "util/bitvector.hpp"

namespace pimecc::circuits {

/// Reads up to 64 bits starting at `offset` as an LSB-first integer.
[[nodiscard]] inline std::uint64_t get_bits(const util::BitVector& v,
                                            std::size_t offset, std::size_t width) {
  std::uint64_t x = 0;
  for (std::size_t i = 0; i < width; ++i) {
    if (v.get(offset + i)) x |= std::uint64_t{1} << i;
  }
  return x;
}

/// Writes `width` bits of `value` (LSB-first) starting at `offset`.
inline void set_bits(util::BitVector& v, std::size_t offset, std::size_t width,
                     std::uint64_t value) {
  for (std::size_t i = 0; i < width; ++i) {
    v.set(offset + i, ((value >> i) & 1u) != 0);
  }
}

}  // namespace pimecc::circuits
