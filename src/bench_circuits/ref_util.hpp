// pimecc -- bench_circuits/ref_util.hpp
//
// Small helpers shared by the reference models: BitVector <-> integer
// packing (LSB-first, matching Bus bit order).
#pragma once

#include <cstdint>
#include <cstddef>

#include "util/bitvector.hpp"

namespace pimecc::circuits {

/// Reads `width` bits starting at `offset` as an LSB-first integer; only the
/// low 64 bits of a wider field are representable, so bits past the 64th are
/// ignored.
[[nodiscard]] inline std::uint64_t get_bits(const util::BitVector& v,
                                            std::size_t offset, std::size_t width) {
  std::uint64_t x = 0;
  for (std::size_t i = 0; i < width && i < 64; ++i) {
    if (v.get(offset + i)) x |= std::uint64_t{1} << i;
  }
  return x;
}

/// Writes `width` bits of `value` (LSB-first) starting at `offset`.  A field
/// wider than the 64-bit value zero-extends: bits at index >= 64 are written
/// as 0 (shifting the value by >= 64 would be UB, not zero).
inline void set_bits(util::BitVector& v, std::size_t offset, std::size_t width,
                     std::uint64_t value) {
  for (std::size_t i = 0; i < width; ++i) {
    v.set(offset + i, i < 64 && ((value >> i) & 1u) != 0);
  }
}

}  // namespace pimecc::circuits
