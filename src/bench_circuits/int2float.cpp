// Benchmark `int2float`: 11-bit two's-complement integer to a compact
// sign/exp3/man3 float (EPFL shape: 11 PI / 7 PO).
//
// Encoding spec (also implemented verbatim by the reference):
//   v == 0            -> all 7 output bits zero.
//   sign = (v < 0); mag = |v| (11-bit, so |-1024| is representable).
//   p = bit position of mag's MSB (0..10).
//   p >= 8            -> saturate: exp = 7, man = 7.
//   otherwise         -> exp = p, man = the 3 bits directly below the MSB
//                        (zero-padded when p < 3).
// Output order: man[0..2], exp[0..2], sign.
#include "bench_circuits/circuits.hpp"

#include <cstdlib>

#include "bench_circuits/ref_util.hpp"
#include "simpler/logic.hpp"

namespace pimecc::circuits {

CircuitSpec build_int2float() {
  constexpr std::size_t kInBits = 11;
  CircuitSpec spec;
  spec.name = "int2float";
  simpler::Netlist netlist("int2float");
  simpler::LogicBuilder b(netlist);
  const simpler::Bus v = b.input_bus(kInBits);
  const simpler::NodeId sign = v[kInBits - 1];

  // Magnitude: sign ? (~v + 1) : v, over all 11 bits.
  simpler::Bus inverted(kInBits);
  for (std::size_t i = 0; i < kInBits; ++i) inverted[i] = b.not_gate(v[i]);
  const simpler::AddResult negated =
      b.ripple_add(inverted, b.constant_bus(kInBits, 1), b.constant(false));
  const simpler::Bus mag = b.mux_bus(sign, v, negated.sum);

  // Leading-one detection: one_hot[p] = mag[p] AND no higher bit set.
  simpler::Bus any_above(kInBits);  // any_above[p] = OR(mag[p+1..10])
  any_above[kInBits - 1] = b.constant(false);
  for (std::size_t p = kInBits - 1; p-- > 0;) {
    any_above[p] = b.or2(any_above[p + 1], mag[p + 1]);
  }
  simpler::Bus one_hot(kInBits);
  for (std::size_t p = 0; p < kInBits; ++p) {
    one_hot[p] = b.nor2(b.not_gate(mag[p]), any_above[p]);  // AND(mag, none-above)
  }
  const simpler::NodeId saturate =
      b.or_gate(std::span<const simpler::NodeId>(one_hot.data() + 8, 3));

  // exp bits = binary encoding of p (0..7), forced to 7 on saturate.
  simpler::Bus exp(3);
  for (std::size_t j = 0; j < 3; ++j) {
    std::vector<simpler::NodeId> terms;
    for (std::size_t p = 0; p < 8; ++p) {
      if ((p >> j) & 1u) terms.push_back(one_hot[p]);
    }
    terms.push_back(saturate);
    exp[j] = b.or_gate(std::span<const simpler::NodeId>(terms));
  }
  // man = the 3 bits below the MSB: man[k] takes mag[p-3+k] (man[2] is the
  // bit adjacent to the MSB), zero-padded when p < 3; forced to 7 on
  // saturate.
  simpler::Bus man(3);
  for (std::size_t k = 0; k < 3; ++k) {
    std::vector<simpler::NodeId> terms;
    for (std::size_t p = 0; p < 8; ++p) {
      if (p + k >= 3) {
        terms.push_back(b.and2(one_hot[p], mag[p + k - 3]));
      }
    }
    terms.push_back(saturate);
    man[k] = b.or_gate(std::span<const simpler::NodeId>(terms));
  }
  b.output_bus(man);
  b.output_bus(exp);
  b.output(sign);

  spec.netlist = std::move(netlist);
  spec.reference = [](const util::BitVector& in) {
    util::BitVector out(7);
    const std::uint64_t raw = get_bits(in, 0, kInBits);
    const std::int64_t value =
        (raw & (1u << (kInBits - 1))) ? static_cast<std::int64_t>(raw) - 2048
                                      : static_cast<std::int64_t>(raw);
    if (value == 0) return out;
    const bool neg = value < 0;
    const std::uint64_t mag_val = static_cast<std::uint64_t>(neg ? -value : value);
    std::size_t p = 0;
    for (std::size_t i = 0; i < kInBits; ++i) {
      if ((mag_val >> i) & 1u) p = i;
    }
    std::uint64_t exp_val, man_val;
    if (p >= 8) {
      exp_val = 7;
      man_val = 7;
    } else {
      exp_val = p;
      man_val = p >= 3 ? (mag_val >> (p - 3)) & 7u : (mag_val << (3 - p)) & 7u;
    }
    set_bits(out, 0, 3, man_val);
    set_bits(out, 3, 3, exp_val);
    out.set(6, neg);
    return out;
  };
  return spec;
}

}  // namespace pimecc::circuits
