#include "bench_circuits/circuits.hpp"

#include <stdexcept>

namespace pimecc::circuits {

const std::vector<std::string>& circuit_names() {
  static const std::vector<std::string> kNames = {
      "adder", "arbiter", "bar",      "cavlc", "ctrl",  "dec",
      "int2float", "max", "priority", "sin",   "voter",
  };
  return kNames;
}

CircuitSpec build_circuit(const std::string& name) {
  if (name == "adder") return build_adder();
  if (name == "arbiter") return build_arbiter();
  if (name == "bar") return build_bar();
  if (name == "cavlc") return build_cavlc();
  if (name == "ctrl") return build_ctrl();
  if (name == "dec") return build_dec();
  if (name == "int2float") return build_int2float();
  if (name == "max") return build_max();
  if (name == "priority") return build_priority();
  if (name == "sin") return build_sin();
  if (name == "voter") return build_voter();
  throw std::invalid_argument("build_circuit: unknown circuit '" + name + "'");
}

std::vector<CircuitSpec> build_all_circuits() {
  std::vector<CircuitSpec> all;
  all.reserve(circuit_names().size());
  for (const std::string& name : circuit_names()) {
    all.push_back(build_circuit(name));
  }
  return all;
}

}  // namespace pimecc::circuits
