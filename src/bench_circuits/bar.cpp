// Benchmark `bar`: 128-bit barrel rotator with a 7-bit amount (EPFL shape:
// 135 PI / 128 PO).  Seven mux stages, stage k rotating left by 2^k.
#include "bench_circuits/circuits.hpp"

#include "bench_circuits/ref_util.hpp"
#include "simpler/logic.hpp"

namespace pimecc::circuits {

CircuitSpec build_bar() {
  constexpr std::size_t kWidth = 128;
  constexpr std::size_t kStages = 7;
  CircuitSpec spec;
  spec.name = "bar";
  simpler::Netlist netlist("bar");
  simpler::LogicBuilder b(netlist);
  const simpler::Bus data = b.input_bus(kWidth);
  const simpler::Bus amount = b.input_bus(kStages);

  simpler::Bus current = data;
  for (std::size_t k = 0; k < kStages; ++k) {
    const std::size_t step = std::size_t{1} << k;
    simpler::Bus rotated(kWidth);
    for (std::size_t i = 0; i < kWidth; ++i) {
      rotated[i] = current[(i + kWidth - step) % kWidth];
    }
    current = b.mux_bus(amount[k], current, rotated);
  }
  b.output_bus(current);
  spec.netlist = std::move(netlist);
  spec.reference = [](const util::BitVector& in) {
    const std::size_t amount_val =
        static_cast<std::size_t>(get_bits(in, kWidth, kStages));
    util::BitVector out(kWidth);
    for (std::size_t i = 0; i < kWidth; ++i) {
      out.set((i + amount_val) % kWidth, in.get(i));
    }
    return out;
  };
  return spec;
}

}  // namespace pimecc::circuits
