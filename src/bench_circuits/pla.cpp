#include "bench_circuits/pla.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace pimecc::circuits {

simpler::Bus synthesize_pla(simpler::LogicBuilder& builder,
                            const simpler::Bus& inputs, const PlaSpec& spec) {
  if (inputs.size() != spec.num_inputs || spec.num_inputs > 32 ||
      spec.num_outputs > 32) {
    throw std::invalid_argument("synthesize_pla: bad spec shape");
  }
  // Shared complemented literals.
  simpler::Bus inverted(inputs.size());
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    inverted[i] = builder.not_gate(inputs[i]);
  }
  // AND plane: term = NOR of the literals that must be 0, i.e. the
  // complement of each required-1 input and the input itself for each
  // required-0 input.
  std::vector<simpler::NodeId> term_nodes;
  term_nodes.reserve(spec.terms.size());
  for (const PlaTerm& term : spec.terms) {
    std::vector<simpler::NodeId> must_be_zero;
    for (std::size_t i = 0; i < spec.num_inputs; ++i) {
      if (!((term.care_mask >> i) & 1u)) continue;
      const bool want_one = (term.match_value >> i) & 1u;
      must_be_zero.push_back(want_one ? inverted[i] : inputs[i]);
    }
    if (must_be_zero.empty()) {
      term_nodes.push_back(builder.constant(true));
    } else {
      term_nodes.push_back(
          builder.nor_gate(std::span<const simpler::NodeId>(must_be_zero)));
    }
  }
  // OR plane.
  simpler::Bus outputs(spec.num_outputs);
  for (std::size_t o = 0; o < spec.num_outputs; ++o) {
    std::vector<simpler::NodeId> contributing;
    for (std::size_t t = 0; t < spec.terms.size(); ++t) {
      if ((spec.terms[t].output_mask >> o) & 1u) contributing.push_back(term_nodes[t]);
    }
    outputs[o] = contributing.empty()
                     ? builder.constant(false)
                     : builder.or_gate(std::span<const simpler::NodeId>(contributing));
  }
  return outputs;
}

util::BitVector eval_pla(const PlaSpec& spec, const util::BitVector& inputs) {
  if (inputs.size() != spec.num_inputs) {
    throw std::invalid_argument("eval_pla: wrong input count");
  }
  std::uint32_t x = 0;
  for (std::size_t i = 0; i < spec.num_inputs; ++i) {
    if (inputs.get(i)) x |= 1u << i;
  }
  util::BitVector out(spec.num_outputs);
  for (const PlaTerm& term : spec.terms) {
    if ((x & term.care_mask) == (term.match_value & term.care_mask)) {
      for (std::size_t o = 0; o < spec.num_outputs; ++o) {
        if ((term.output_mask >> o) & 1u) out.set(o, true);
      }
    }
  }
  return out;
}

PlaSpec make_table_pla(std::size_t num_inputs, std::size_t num_outputs,
                       std::size_t num_terms, std::uint64_t seed) {
  if (num_inputs == 0 || num_inputs > 32 || num_outputs == 0 || num_outputs > 32) {
    throw std::invalid_argument("make_table_pla: shape out of range");
  }
  util::Rng rng(seed);
  PlaSpec spec;
  spec.num_inputs = num_inputs;
  spec.num_outputs = num_outputs;
  spec.terms.reserve(num_terms);
  const std::uint32_t in_mask =
      num_inputs == 32 ? ~0u : ((1u << num_inputs) - 1u);
  const std::uint32_t out_mask =
      num_outputs == 32 ? ~0u : ((1u << num_outputs) - 1u);
  for (std::size_t t = 0; t < num_terms; ++t) {
    PlaTerm term;
    // Each term cares about roughly half the inputs and drives 1-3 outputs.
    do {
      term.care_mask = static_cast<std::uint32_t>(rng.next()) & in_mask;
    } while (term.care_mask == 0);
    term.match_value = static_cast<std::uint32_t>(rng.next()) & term.care_mask;
    do {
      term.output_mask = static_cast<std::uint32_t>(rng.next()) &
                         static_cast<std::uint32_t>(rng.next()) & out_mask;
    } while (term.output_mask == 0);
    spec.terms.push_back(term);
  }
  return spec;
}

}  // namespace pimecc::circuits
