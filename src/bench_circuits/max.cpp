// Benchmark `max`: maximum of four 128-bit unsigned integers plus a 2-bit
// argmax (EPFL shape: 512 PI / 130 PO).  Tournament of three ripple-borrow
// comparators with bus multiplexers; ties resolve to the earlier operand.
#include "bench_circuits/circuits.hpp"

#include "bench_circuits/ref_util.hpp"
#include "simpler/logic.hpp"

namespace pimecc::circuits {

CircuitSpec build_max() {
  constexpr std::size_t kWidth = 128;
  CircuitSpec spec;
  spec.name = "max";
  simpler::Netlist netlist("max");
  simpler::LogicBuilder b(netlist);
  const simpler::Bus a = b.input_bus(kWidth);
  const simpler::Bus bb = b.input_bus(kWidth);
  const simpler::Bus c = b.input_bus(kWidth);
  const simpler::Bus d = b.input_bus(kWidth);

  // Semifinals: ties keep the earlier operand (>=).
  const simpler::NodeId a_ge_b = b.greater_equal(a, bb);
  const simpler::Bus m0 = b.mux_bus(a_ge_b, bb, a);       // winner of {a,b}
  const simpler::NodeId i0 = b.not_gate(a_ge_b);          // 0 if a, 1 if b
  const simpler::NodeId c_ge_d = b.greater_equal(c, d);
  const simpler::Bus m1 = b.mux_bus(c_ge_d, d, c);
  const simpler::NodeId i1 = b.not_gate(c_ge_d);
  // Final.
  const simpler::NodeId m0_ge_m1 = b.greater_equal(m0, m1);
  const simpler::Bus value = b.mux_bus(m0_ge_m1, m1, m0);
  const simpler::NodeId idx_low = b.mux(m0_ge_m1, i1, i0);
  const simpler::NodeId idx_high = b.not_gate(m0_ge_m1);

  b.output_bus(value);
  b.output(idx_low);
  b.output(idx_high);
  spec.netlist = std::move(netlist);
  spec.reference = [](const util::BitVector& in) {
    auto word = [&](std::size_t which) {
      // 128-bit operand as two 64-bit halves for comparison.
      const std::uint64_t lo = get_bits(in, which * kWidth, 64);
      const std::uint64_t hi = get_bits(in, which * kWidth + 64, 64);
      return std::pair{hi, lo};
    };
    std::size_t best = 0;
    for (std::size_t i = 1; i < 4; ++i) {
      if (word(i) > word(best)) best = i;
    }
    util::BitVector out(kWidth + 2);
    for (std::size_t i = 0; i < kWidth; ++i) out.set(i, in.get(best * kWidth + i));
    out.set(kWidth, (best & 1u) != 0);
    out.set(kWidth + 1, (best & 2u) != 0);
    return out;
  };
  return spec;
}

}  // namespace pimecc::circuits
