// Benchmark `cavlc`: coding-table logic (EPFL shape: 10 PI / 11 PO).
//
// The EPFL original is the H.264 CAVLC coeff_token decode table.  Its exact
// table is not redistributable here, so a fixed pseudo-random PLA of the
// same shape stands in: 90 product terms over 10 inputs driving 11 outputs
// (two-level NOR-NOR logic).  Table lookups of this shape exercise the same
// mapped-program structure: a wide flat layer of small-fanin gates followed
// by shallow OR planes, with nearly all gate outputs internal.
#include "bench_circuits/circuits.hpp"

#include "bench_circuits/pla.hpp"
#include "simpler/logic.hpp"

namespace pimecc::circuits {

CircuitSpec build_cavlc() {
  CircuitSpec spec;
  spec.name = "cavlc";
  const PlaSpec pla = make_table_pla(10, 11, 90, /*seed=*/0xCA41Cull);
  simpler::Netlist netlist("cavlc");
  simpler::LogicBuilder b(netlist);
  const simpler::Bus inputs = b.input_bus(pla.num_inputs);
  b.output_bus(synthesize_pla(b, inputs, pla));
  spec.netlist = std::move(netlist);
  spec.reference = [pla](const util::BitVector& in) { return eval_pla(pla, in); };
  return spec;
}

}  // namespace pimecc::circuits
