// Benchmark `sin`: fixed-point sine approximation (EPFL shape: 24 PI /
// 25 PO).
//
// Spec (implemented identically by netlist and reference, all unsigned):
//   X      : 24-bit input, representing u = X / 2^24 in [0, 1) radians.
//   x_hi   = X >> 12                                  (12 bits)
//   q      = x_hi * x_hi                              (24 bits, ~u^2 * 2^24)
//   q_hi   = q >> 12                                  (12 bits)
//   cube   = q_hi * x_hi                              (24 bits, ~u^3 * 2^24)
//   t      = (cube * 43) >> 8                         (43/256 ~ 1/6)
//   result = X - t  (24-bit difference, plus borrow)
// Output order: result[0..23], borrow -- approximating
// sin(u) ~ u - u^3/6 scaled by 2^24.
#include "bench_circuits/circuits.hpp"

#include "bench_circuits/ref_util.hpp"
#include "simpler/logic.hpp"

namespace pimecc::circuits {

CircuitSpec build_sin() {
  constexpr std::size_t kBits = 24;
  constexpr std::size_t kHalf = 12;
  CircuitSpec spec;
  spec.name = "sin";
  simpler::Netlist netlist("sin");
  simpler::LogicBuilder b(netlist);
  const simpler::Bus x = b.input_bus(kBits);

  const simpler::Bus x_hi(x.begin() + kHalf, x.end());         // 12 bits
  const simpler::Bus q = b.multiply(x_hi, x_hi);               // 24 bits
  const simpler::Bus q_hi(q.begin() + kHalf, q.end());         // 12 bits
  const simpler::Bus cube = b.multiply(q_hi, x_hi);            // 24 bits

  // cube * 43 = cube*32 + cube*8 + cube*2 + cube, over 30 bits.
  auto widen_shift = [&](const simpler::Bus& bus, std::size_t shift,
                         std::size_t width) {
    simpler::Bus out(width, b.constant(false));
    for (std::size_t i = 0; i < bus.size() && i + shift < width; ++i) {
      out[i + shift] = bus[i];
    }
    return out;
  };
  constexpr std::size_t kWide = 30;
  simpler::Bus acc = widen_shift(cube, 0, kWide);
  for (const std::size_t shift : {1u, 3u, 5u}) {  // +2x, +8x, +32x
    acc = b.ripple_add(acc, widen_shift(cube, shift, kWide), b.constant(false)).sum;
  }
  // t = acc >> 8, as a 24-bit value (acc is 30 bits, so t fits in 22).
  simpler::Bus t(kBits, b.constant(false));
  for (std::size_t i = 8; i < kWide; ++i) t[i - 8] = acc[i];

  const simpler::AddResult diff = b.ripple_sub(x, t);
  b.output_bus(diff.sum);
  b.output(diff.carry_out);  // borrow

  spec.netlist = std::move(netlist);
  spec.reference = [](const util::BitVector& in) {
    const std::uint64_t x_val = get_bits(in, 0, kBits);
    const std::uint64_t x_hi_val = x_val >> kHalf;
    const std::uint64_t q_val = (x_hi_val * x_hi_val) & 0xFFFFFFu;
    const std::uint64_t q_hi_val = q_val >> kHalf;
    const std::uint64_t cube_val = (q_hi_val * x_hi_val) & 0xFFFFFFu;
    const std::uint64_t t_val = ((cube_val * 43u) >> 8) & 0xFFFFFFu;
    const bool borrow = x_val < t_val;
    const std::uint64_t result = (x_val - t_val) & 0xFFFFFFu;
    util::BitVector out(kBits + 1);
    set_bits(out, 0, kBits, result);
    out.set(kBits, borrow);
    return out;
  };
  return spec;
}

}  // namespace pimecc::circuits
