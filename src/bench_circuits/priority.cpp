// Benchmark `priority`: 128-bit priority encoder (EPFL shape: 128 PI /
// 8 PO).  Lowest-index request wins; outputs the 7-bit index plus a valid
// flag.
#include "bench_circuits/circuits.hpp"

#include "bench_circuits/ref_util.hpp"
#include "simpler/logic.hpp"

namespace pimecc::circuits {

CircuitSpec build_priority() {
  constexpr std::size_t kWidth = 128;
  constexpr std::size_t kIndexBits = 7;
  CircuitSpec spec;
  spec.name = "priority";
  simpler::Netlist netlist("priority");
  simpler::LogicBuilder b(netlist);
  const simpler::Bus req = b.input_bus(kWidth);

  // prefix[i] = OR(req[0..i]); grant[i] = req[i] AND NOT prefix[i-1].
  simpler::Bus prefix(kWidth);
  prefix[0] = req[0];
  for (std::size_t i = 1; i < kWidth; ++i) prefix[i] = b.or2(prefix[i - 1], req[i]);
  simpler::Bus grant(kWidth);
  grant[0] = req[0];
  for (std::size_t i = 1; i < kWidth; ++i) {
    grant[i] = b.nor2(b.not_gate(req[i]), prefix[i - 1]);  // AND(req, ~prefix)
  }
  // Index bit j = OR of all grants whose position has bit j set.
  for (std::size_t j = 0; j < kIndexBits; ++j) {
    std::vector<simpler::NodeId> terms;
    for (std::size_t i = 0; i < kWidth; ++i) {
      if ((i >> j) & 1u) terms.push_back(grant[i]);
    }
    b.output(b.or_gate(std::span<const simpler::NodeId>(terms)));
  }
  b.output(prefix[kWidth - 1]);  // valid
  spec.netlist = std::move(netlist);
  spec.reference = [](const util::BitVector& in) {
    util::BitVector out(kIndexBits + 1);
    for (std::size_t i = 0; i < kWidth; ++i) {
      if (in.get(i)) {
        set_bits(out, 0, kIndexBits, i);
        out.set(kIndexBits, true);
        break;
      }
    }
    return out;
  };
  return spec;
}

}  // namespace pimecc::circuits
