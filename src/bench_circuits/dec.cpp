// Benchmark `dec`: 8-to-256 one-hot decoder (EPFL shape: 8 PI / 256 PO).
// Classic predecoded structure: two 4-to-16 predecoders feed 256 2-input
// AND gates.  Nearly every gate drives a primary output, which is what
// makes `dec` the paper's worst-case latency benchmark.
#include "bench_circuits/circuits.hpp"

#include "bench_circuits/ref_util.hpp"
#include "simpler/logic.hpp"

namespace pimecc::circuits {

CircuitSpec build_dec() {
  constexpr std::size_t kInBits = 8;
  constexpr std::size_t kOutputs = 256;
  CircuitSpec spec;
  spec.name = "dec";
  simpler::Netlist netlist("dec");
  simpler::LogicBuilder b(netlist);
  const simpler::Bus x = b.input_bus(kInBits);

  simpler::Bus inverted(kInBits);
  for (std::size_t i = 0; i < kInBits; ++i) inverted[i] = b.not_gate(x[i]);

  // 4-to-16 predecoder: line p = AND of 4 literals = NOR of 4 complements.
  auto predecode = [&](std::size_t base) {
    simpler::Bus lines(16);
    for (std::size_t p = 0; p < 16; ++p) {
      std::vector<simpler::NodeId> complements(4);
      for (std::size_t i = 0; i < 4; ++i) {
        const bool want_one = (p >> i) & 1u;
        complements[i] = want_one ? inverted[base + i] : x[base + i];
      }
      lines[p] = b.nor_gate(std::span<const simpler::NodeId>(complements));
    }
    return lines;
  };
  const simpler::Bus low = predecode(0);
  const simpler::Bus high = predecode(4);

  simpler::Bus nlow(16), nhigh(16);
  for (std::size_t p = 0; p < 16; ++p) {
    nlow[p] = b.not_gate(low[p]);
    nhigh[p] = b.not_gate(high[p]);
  }
  for (std::size_t v = 0; v < kOutputs; ++v) {
    b.output(b.nor2(nlow[v & 15], nhigh[v >> 4]));  // AND2 of predecoded lines
  }
  spec.netlist = std::move(netlist);
  spec.reference = [](const util::BitVector& in) {
    const std::size_t v = static_cast<std::size_t>(get_bits(in, 0, kInBits));
    util::BitVector out(kOutputs);
    out.set(v, true);
    return out;
  };
  return spec;
}

}  // namespace pimecc::circuits
