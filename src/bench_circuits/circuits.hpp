// pimecc -- bench_circuits/circuits.hpp
//
// NOR-netlist generators standing in for the EPFL combinational benchmark
// suite [20] (see DESIGN.md substitution #1).  Each circuit matches the
// EPFL original's primary-input/primary-output counts and implements a
// functionally equivalent computation, paired with a bit-accurate C++
// reference model used by the test suite.
//
//   name       PI    PO    computation
//   adder      256   129   128+128-bit ripple-carry addition
//   arbiter    128    65   64-client rotating-priority (round-robin) arbiter
//   bar        135   128   128-bit barrel rotator, 7-bit amount
//   cavlc      10     11   coding-table PLA (two-level NOR-NOR logic)
//   ctrl       7      26   controller decode PLA
//   dec        8     256   8-to-256 one-hot decoder (predecoded)
//   int2float  11      7   11-bit signed int -> compact float (e3m3)
//   max        512   130   max of four 128-bit unsigned + 2-bit argmax
//   priority   128     8   128-bit priority encoder (index + valid)
//   sin        24     25   fixed-point sin approximation (x - x^3/6)
//   voter      1001    1   1001-input majority
//
// Note: `arbiter` uses 64 clients where EPFL uses 128; the quadratic
// pointer-range structure of a flat round-robin arbiter would otherwise
// far exceed the EPFL gate count and distort the Table I latency-overhead
// shape the suite exists to reproduce.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "simpler/netlist.hpp"
#include "util/bitvector.hpp"

namespace pimecc::circuits {

/// A generated benchmark circuit plus its reference model.
struct CircuitSpec {
  std::string name;
  simpler::Netlist netlist;
  /// Bit-accurate reference: maps a PI assignment (indexed like
  /// netlist.inputs()) to the expected PO values (indexed like outputs()).
  std::function<util::BitVector(const util::BitVector&)> reference;
};

/// The 11 benchmark names in Table I order.
[[nodiscard]] const std::vector<std::string>& circuit_names();

/// Builds one circuit by name; throws std::invalid_argument for unknown
/// names.
[[nodiscard]] CircuitSpec build_circuit(const std::string& name);

/// Builds all 11 circuits in Table I order.
[[nodiscard]] std::vector<CircuitSpec> build_all_circuits();

// Individual builders (exposed for focused tests).
[[nodiscard]] CircuitSpec build_adder();
[[nodiscard]] CircuitSpec build_arbiter();
[[nodiscard]] CircuitSpec build_bar();
[[nodiscard]] CircuitSpec build_cavlc();
[[nodiscard]] CircuitSpec build_ctrl();
[[nodiscard]] CircuitSpec build_dec();
[[nodiscard]] CircuitSpec build_int2float();
[[nodiscard]] CircuitSpec build_max();
[[nodiscard]] CircuitSpec build_priority();
[[nodiscard]] CircuitSpec build_sin();
[[nodiscard]] CircuitSpec build_voter();

}  // namespace pimecc::circuits
