// Benchmark `adder`: 128+128-bit ripple-carry addition (EPFL shape:
// 256 PI / 129 PO).  Each full adder is XOR3 (8 NORs) + majority (4 NORs).
#include "bench_circuits/circuits.hpp"

#include "bench_circuits/ref_util.hpp"
#include "simpler/logic.hpp"

namespace pimecc::circuits {

CircuitSpec build_adder() {
  constexpr std::size_t kWidth = 128;
  CircuitSpec spec;
  spec.name = "adder";
  simpler::Netlist netlist("adder");
  simpler::LogicBuilder b(netlist);
  const simpler::Bus a = b.input_bus(kWidth);
  const simpler::Bus bb = b.input_bus(kWidth);
  const simpler::AddResult r = b.ripple_add(a, bb, b.constant(false));
  b.output_bus(r.sum);
  b.output(r.carry_out);
  spec.netlist = std::move(netlist);
  spec.reference = [](const util::BitVector& in) {
    util::BitVector out(kWidth + 1);
    bool carry = false;
    for (std::size_t i = 0; i < kWidth; ++i) {
      const bool x = in.get(i);
      const bool y = in.get(kWidth + i);
      out.set(i, x ^ y ^ carry);
      carry = (x && y) || (carry && (x || y));
    }
    out.set(kWidth, carry);
    return out;
  };
  return spec;
}

}  // namespace pimecc::circuits
