// Benchmark `voter`: 1001-input majority gate (EPFL shape: 1001 PI / 1 PO).
// A carry-save full-adder reduction tree counts the set inputs; the output
// compares the count against 501.  At ~12k NOR gates with a single output,
// this is the paper's lowest-overhead benchmark regime (the cost is
// dominated by the one-time cancelation of the 1001 input cells as they
// are recycled).
#include "bench_circuits/circuits.hpp"

#include "bench_circuits/ref_util.hpp"
#include "simpler/logic.hpp"

namespace pimecc::circuits {

CircuitSpec build_voter() {
  constexpr std::size_t kInputs = 1001;
  constexpr std::size_t kThreshold = 501;
  CircuitSpec spec;
  spec.name = "voter";
  simpler::Netlist netlist("voter");
  simpler::LogicBuilder b(netlist);
  const simpler::Bus votes = b.input_bus(kInputs);
  simpler::Bus count = b.popcount(votes);
  const simpler::Bus threshold = b.constant_bus(count.size(), kThreshold);
  b.output(b.greater_equal(count, threshold));
  spec.netlist = std::move(netlist);
  spec.reference = [](const util::BitVector& in) {
    util::BitVector out(1);
    out.set(0, in.count() >= kThreshold);
    return out;
  };
  return spec;
}

}  // namespace pimecc::circuits
