#include "arch/pim_machine.hpp"

#include <stdexcept>

#include "arch/arch_checks.hpp"
#include "arch/scheduler.hpp"  // xor3_fold_levels

namespace pimecc::arch {

PimMachine::PimMachine(const ArchParams& params)
    : params_(params),
      mem_((params.validate(), params.n), params.n),
      code_(params.n, params.m) {}

void PimMachine::load(const util::BitMatrix& image) {
  if (image.rows() != n() || image.cols() != n()) {
    throw std::invalid_argument("PimMachine::load: image must be n x n");
  }
  for (std::size_t r = 0; r < n(); ++r) {
    mem_.write_row(r, image.row(r));
  }
  // Initial encode: one batch band walk over the whole array.
  code_.encode_all(mem_.contents());
  counters_.mem_cycles = mem_.cycles();
}

void PimMachine::restore(const util::BitMatrix& data, const ecc::ArrayCode& code,
                         const MachineCounters& counters,
                         const xbar::Crossbar::Counters& mem_counters) {
  if (data.rows() != n() || data.cols() != n()) {
    throw std::invalid_argument("PimMachine::restore: data must be n x n");
  }
  if (code.n() != n() || code.m() != m()) {
    throw std::invalid_argument(
        "PimMachine::restore: check-code geometry mismatch");
  }
  // Direct state replacement, no controller writes and no re-encode: the
  // snapshot's counters already account for everything that produced this
  // state, and the check bits must come back verbatim (they may be
  // intentionally inconsistent, e.g. mid-fault-injection).
  mem_.contents_mutable() = data;
  code_ = code;
  mem_.restore_counters(mem_counters);
  counters_ = counters;
}

void PimMachine::update_check_bits_for_line(bool along_rows, std::size_t line,
                                            const util::BitVector& delta) {
  code_.apply_line_delta(along_rows, line, delta);
  // Protocol cost, identical to the reference datapath: two MEM->CMEM
  // transfers serialize with the MEM; the XOR3 passes and write-backs run
  // in the CMEM.
  counters_.mem_cycles += 2 * params_.transfer_cycles;
  counters_.cmem_cycles +=
      params_.transfer_cycles + params_.xor3_cycles + params_.writeback_cycles;
  ++counters_.critical_ops;
}

void PimMachine::write_row_protected(std::size_t r, const util::BitVector& values) {
  detail::require_index(r, n(), "row");
  if (values.size() != n()) {
    throw std::invalid_argument("PimMachine::write_row_protected: size mismatch");
  }
  old_line_ = mem_.contents().row(r);
  mem_.write_row(r, values);
  counters_.mem_cycles = mem_.cycles();
  old_line_ ^= values;  // delta
  update_check_bits_for_line(false, r, old_line_);
}

void PimMachine::magic_nor_rows_protected(std::span<const std::size_t> in_cols,
                                          std::size_t out_col,
                                          std::span<const std::size_t> rows) {
  detail::require_indices(in_cols, n(), "input column");
  detail::require_index(out_col, n(), "output column");
  detail::require_distinct(rows, n(), "row lane");
  mem_.contents().column_into(out_col, old_line_);
  mem_.magic_nor(xbar::Orientation::kRow, in_cols, out_col, rows);
  mem_.contents().column_into(out_col, new_line_);
  counters_.mem_cycles = mem_.cycles();
  old_line_ ^= new_line_;  // delta
  update_check_bits_for_line(true, out_col, old_line_);
}

void PimMachine::magic_nor_cols_protected(std::span<const std::size_t> in_rows,
                                          std::size_t out_row,
                                          std::span<const std::size_t> cols) {
  detail::require_indices(in_rows, n(), "input row");
  detail::require_index(out_row, n(), "output row");
  detail::require_distinct(cols, n(), "column lane");
  old_line_ = mem_.contents().row(out_row);
  mem_.magic_nor(xbar::Orientation::kColumn, in_rows, out_row, cols);
  counters_.mem_cycles = mem_.cycles();
  old_line_ ^= mem_.contents().row(out_row);  // delta
  update_check_bits_for_line(false, out_row, old_line_);
}

void PimMachine::magic_init_rows_protected(std::span<const std::size_t> cols) {
  detail::require_distinct(cols, n(), "init column");
  init_snapshots_.resize(cols.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    mem_.contents().column_into(cols[i], init_snapshots_[i]);
  }
  mem_.magic_init(xbar::Orientation::kRow, cols);
  counters_.mem_cycles = mem_.cycles();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    // Init drives every cell of the line to LRS, so delta = NOT(old).
    init_snapshots_[i].invert();
    update_check_bits_for_line(true, cols[i], init_snapshots_[i]);
  }
}

void PimMachine::magic_init_cols_protected(std::span<const std::size_t> rows) {
  detail::require_distinct(rows, n(), "init row");
  init_snapshots_.resize(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    init_snapshots_[i] = mem_.contents().row(rows[i]);
  }
  mem_.magic_init(xbar::Orientation::kColumn, rows);
  counters_.mem_cycles = mem_.cycles();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    init_snapshots_[i].invert();
    update_check_bits_for_line(false, rows[i], init_snapshots_[i]);
  }
}

CheckReport PimMachine::check_block_band(bool row_band, std::size_t band) {
  const ecc::ScrubReport sr =
      code_.scrub_band(mem_.contents_mutable(), row_band, band);
  CheckReport report;
  report.blocks_checked = sr.blocks_checked;
  report.corrected_data = sr.corrected_data;
  report.corrected_check = sr.corrected_check;
  report.uncorrectable = sr.uncorrectable;
  // Cost model: m MEM copy cycles; the XOR3 fold tree, syndrome compare and
  // flag evaluation run in the CMEM off the MEM's critical path.
  counters_.mem_cycles += m();
  counters_.cmem_cycles += xor3_fold_levels(m() + 1) * params_.xor3_cycles + 2 + 1;
  ++counters_.checks;
  return report;
}

CheckReport PimMachine::check_block_row(std::size_t row) {
  detail::require_index(row, n(), "row");
  return check_block_band(true, row / m());
}

CheckReport PimMachine::check_block_col(std::size_t col) {
  detail::require_index(col, n(), "column");
  return check_block_band(false, col / m());
}

CheckReport PimMachine::scrub() {
  CheckReport total;
  for (std::size_t band = 0; band < params_.blocks_per_side(); ++band) {
    const CheckReport r = check_block_band(true, band);
    total.blocks_checked += r.blocks_checked;
    total.corrected_data += r.corrected_data;
    total.corrected_check += r.corrected_check;
    total.uncorrectable += r.uncorrectable;
  }
  ++counters_.scrubs;
  return total;
}

bool PimMachine::ecc_consistent() const {
  return code_.consistent_with(mem_.contents());
}

void PimMachine::inject_data_error(std::size_t r, std::size_t c) {
  detail::require_index(r, n(), "row");
  detail::require_index(c, n(), "column");
  mem_.contents_mutable().flip(r, c);
}

void PimMachine::inject_check_error(Axis axis, std::size_t diagonal,
                                    ecc::BlockIndex block) {
  detail::require_index(diagonal, m(), "diagonal");
  ecc::CheckBits& bits = code_.check_bits_mutable(block);  // validates block
  (axis == Axis::kLeading ? bits.leading : bits.counter).flip(diagonal);
}

}  // namespace pimecc::arch
