// pimecc -- arch/arch_checks.hpp
//
// Validate-before-mutate helpers shared by PimMachine and
// ReferencePimMachine (the PR 2/3 convention applied to the arch layer):
// every protected entry point checks its whole argument set with these
// *before* snapshotting lines, touching crossbar or check-bit state, or
// advancing any counter, so a throwing call leaves the machine -- data,
// check bits, cycle counters -- exactly as it was.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pimecc::arch::detail {

inline void require_index(std::size_t value, std::size_t bound, const char* what) {
  if (value >= bound) {
    throw std::out_of_range(std::string("PimMachine: ") + what + " out of range");
  }
}

inline void require_indices(std::span<const std::size_t> values, std::size_t bound,
                            const char* what) {
  for (const std::size_t v : values) require_index(v, bound, what);
}

/// Indices must be in range and pairwise distinct: a physical line cannot be
/// driven twice in one cycle, and a duplicate init line would corrupt the
/// check-bit update (the old-line snapshots are taken up front, so the
/// second update would cancel the first instead of tracking the data).
inline void require_distinct(std::span<const std::size_t> values, std::size_t bound,
                             const char* what) {
  if (values.size() <= 16) {
    for (std::size_t i = 0; i < values.size(); ++i) {
      require_index(values[i], bound, what);
      for (std::size_t j = 0; j < i; ++j) {
        if (values[i] == values[j]) {
          throw std::invalid_argument(std::string("PimMachine: duplicate ") + what);
        }
      }
    }
    return;
  }
  std::vector<bool> seen(bound, false);
  for (const std::size_t v : values) {
    require_index(v, bound, what);
    if (seen[v]) {
      throw std::invalid_argument(std::string("PimMachine: duplicate ") + what);
    }
    seen[v] = true;
  }
}

}  // namespace pimecc::arch::detail
