#include "arch/pc_controller.hpp"

#include <stdexcept>

namespace pimecc::arch {

PcController::PcController(std::size_t lanes) : xbar_(lanes) {}

void PcController::start(util::BitVector old_line, util::BitVector check_line,
                         util::BitVector new_line) {
  if (busy()) {
    throw std::logic_error("PcController::start: FSM is busy");
  }
  const std::size_t lanes = xbar_.lanes();
  if (old_line.size() != lanes || check_line.size() != lanes ||
      new_line.size() != lanes) {
    throw std::invalid_argument("PcController::start: operand length mismatch");
  }
  pending_old_ = std::move(old_line);
  pending_check_ = std::move(check_line);
  pending_new_ = std::move(new_line);
  state_ = PcState::kInit;
}

std::optional<util::BitVector> PcController::step() {
  std::optional<util::BitVector> writeback;
  switch (state_) {
    case PcState::kIdle:
    case PcState::kDone:
      return std::nullopt;  // no clocking work while idle
    case PcState::kInit:
      xbar_.init_working_cells();
      break;
    case PcState::kLoadOld:
      xbar_.load_operand(ProcessingXbar::kA, pending_old_);
      break;
    case PcState::kLoadCheck:
      xbar_.load_operand(ProcessingXbar::kC, pending_check_);
      break;
    case PcState::kLoadNew:
      xbar_.load_operand(ProcessingXbar::kB, pending_new_);
      break;
    case PcState::kNor1:
      // The microprogram's NOR sequence is fixed; the data path executes
      // all eight gates through ProcessingXbar::compute() on the first NOR
      // state, and the FSM spends the remaining seven states clocking
      // through the same schedule (one gate per cycle in hardware).
      xbar_.compute();
      break;
    case PcState::kNor2:
    case PcState::kNor3:
    case PcState::kNor4:
    case PcState::kNor5:
    case PcState::kNor6:
    case PcState::kNor7:
    case PcState::kNor8:
      break;
    case PcState::kWriteBack:
      writeback = xbar_.writeback_values();
      break;
  }
  ++cycles_;
  state_ = next(state_);
  return writeback;
}

PcController::RunResult PcController::run_to_completion() {
  if (!busy()) {
    throw std::logic_error("PcController::run_to_completion: FSM not armed");
  }
  RunResult result;
  const std::uint64_t start_cycles = cycles_;
  while (busy()) {
    if (auto wb = step()) result.updated_check = std::move(*wb);
  }
  result.cycles = cycles_ - start_cycles;
  return result;
}

}  // namespace pimecc::arch
