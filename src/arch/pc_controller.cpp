#include "arch/pc_controller.hpp"

#include <stdexcept>

namespace pimecc::arch {

PcController::PcController(std::size_t lanes) : xbar_(lanes) {}

void PcController::require_lane_widths(const util::BitVector& old_line,
                                       const util::BitVector& check_line,
                                       const util::BitVector& new_line) const {
  const std::size_t lanes = xbar_.lanes();
  if (old_line.size() != lanes || check_line.size() != lanes ||
      new_line.size() != lanes) {
    throw std::invalid_argument("PcController: operand length mismatch");
  }
}

void PcController::start(util::BitVector old_line, util::BitVector check_line,
                         util::BitVector new_line) {
  if (busy()) {
    throw std::logic_error("PcController::start: FSM is busy");
  }
  require_lane_widths(old_line, check_line, new_line);
  pending_old_ = std::move(old_line);
  pending_check_ = std::move(check_line);
  pending_new_ = std::move(new_line);
  state_ = PcState::kInit;
}

void PcController::enqueue(util::BitVector old_line, util::BitVector check_line,
                           util::BitVector new_line) {
  require_lane_widths(old_line, check_line, new_line);
  if (!busy()) {
    pending_old_ = std::move(old_line);
    pending_check_ = std::move(check_line);
    pending_new_ = std::move(new_line);
    state_ = PcState::kInit;
    return;
  }
  queue_.push_back(
      {std::move(old_line), std::move(check_line), std::move(new_line)});
}

std::optional<util::BitVector> PcController::step() {
  std::optional<util::BitVector> writeback;
  switch (state_) {
    case PcState::kIdle:
    case PcState::kDone:
      return std::nullopt;  // no clocking work while idle
    case PcState::kInit:
      xbar_.init_working_cells();
      break;
    case PcState::kLoadOld:
      xbar_.load_operand(ProcessingXbar::kA, pending_old_);
      break;
    case PcState::kLoadCheck:
      xbar_.load_operand(ProcessingXbar::kC, pending_check_);
      break;
    case PcState::kLoadNew:
      xbar_.load_operand(ProcessingXbar::kB, pending_new_);
      break;
    case PcState::kNor1:
      // The microprogram's NOR sequence is fixed; the data path executes
      // all eight gates through ProcessingXbar::compute() on the first NOR
      // state, and the FSM spends the remaining seven states clocking
      // through the same schedule (one gate per cycle in hardware).
      xbar_.compute();
      break;
    case PcState::kNor2:
    case PcState::kNor3:
    case PcState::kNor4:
    case PcState::kNor5:
    case PcState::kNor6:
    case PcState::kNor7:
    case PcState::kNor8:
      break;
    case PcState::kWriteBack:
      writeback = xbar_.writeback_values();
      break;
  }
  ++cycles_;
  state_ = next(state_);
  if (state_ == PcState::kDone && !queue_.empty()) {
    // Batched traffic: the controller latches the next queued update the
    // same cycle the write-back retires, so the next INIT runs on the very
    // next clock -- no idle round-trip between updates.
    QueuedUpdate next_update = std::move(queue_.front());
    queue_.pop_front();
    pending_old_ = std::move(next_update.old_line);
    pending_check_ = std::move(next_update.check_line);
    pending_new_ = std::move(next_update.new_line);
    state_ = PcState::kInit;
  }
  return writeback;
}

PcController::RunResult PcController::run_to_completion() {
  if (!busy()) {
    throw std::logic_error("PcController::run_to_completion: FSM not armed");
  }
  RunResult result;
  const std::uint64_t start_cycles = cycles_;
  while (busy()) {
    if (auto wb = step()) result.updated_check = std::move(*wb);
  }
  result.cycles = cycles_ - start_cycles;
  return result;
}

PcController::BatchResult PcController::run_batch_to_completion() {
  if (!busy()) {
    throw std::logic_error("PcController::run_batch_to_completion: FSM not armed");
  }
  BatchResult result;
  const std::uint64_t start_cycles = cycles_;
  while (busy()) {
    if (auto wb = step()) result.updated_checks.push_back(std::move(*wb));
  }
  result.cycles = cycles_ - start_cycles;
  return result;
}

}  // namespace pimecc::arch
