#include "arch/checkpoint.hpp"

#include <ostream>
#include <utility>

#include "core/array_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/serialize.hpp"

namespace pimecc::arch {

namespace {

const std::uint64_t kMachineMagic = util::chunk_magic("PIMECCMC");

void put_params(util::ByteWriter& w, const ArchParams& p) {
  w.u64(p.n);
  w.u64(p.m);
  w.u64(p.num_pcs);
  w.u64(p.xor3_cycles);
  w.u64(p.transfer_cycles);
  w.u64(p.writeback_cycles);
  w.u8(p.wait_check_before_critical ? 1 : 0);
  w.u8(static_cast<std::uint8_t>(p.hazard));
}

/// Decodes the parameter fingerprint and requires exact equality with the
/// target machine's params: the timing knobs are part of the counters'
/// meaning, not just the geometry.
void match_params(util::ByteReader& r, const ArchParams& p) {
  const bool same = r.u64() == p.n && r.u64() == p.m && r.u64() == p.num_pcs &&
                    r.u64() == p.xor3_cycles && r.u64() == p.transfer_cycles &&
                    r.u64() == p.writeback_cycles &&
                    r.u8() == (p.wait_check_before_critical ? 1 : 0) &&
                    r.u8() == static_cast<std::uint8_t>(p.hazard);
  if (!same) {
    throw util::SerializeError(
        "machine checkpoint parameter mismatch (saved for a different "
        "ArchParams)");
  }
}

}  // namespace

void save_machine_checkpoint(std::ostream& os, const PimMachine& machine,
                             const util::Rng* rng) {
  util::ByteWriter w;
  put_params(w, machine.params());
  w.bitmatrix(machine.data());

  const ecc::ArrayCode& code = machine.check_code();
  const std::size_t bps = code.blocks_per_side();
  w.u64(code.block_count());
  for (std::size_t br = 0; br < bps; ++br) {
    for (std::size_t bc = 0; bc < bps; ++bc) {
      const ecc::CheckBits& bits = code.check_bits({br, bc});
      w.bitvector(bits.leading);
      w.bitvector(bits.counter);
    }
  }

  const MachineCounters& c = machine.counters();
  w.u64(c.mem_cycles);
  w.u64(c.cmem_cycles);
  w.u64(c.critical_ops);
  w.u64(c.checks);
  w.u64(c.scrubs);
  const xbar::Crossbar::Counters mc = machine.mem_counters();
  w.u64(mc.cycles);
  w.u64(mc.nor_ops);
  w.u64(mc.init_cycles);

  w.u8(rng != nullptr ? 1 : 0);
  if (rng != nullptr) {
    for (const std::uint64_t word : rng->state()) w.u64(word);
  }

  util::write_chunk(os, kMachineMagic, kMachineCheckpointVersion, w.data());
}

void load_machine_checkpoint(std::istream& is, PimMachine& machine,
                             util::Rng* rng) {
  const util::Chunk chunk =
      util::read_chunk(is, kMachineMagic, kMachineCheckpointVersion);
  util::ByteReader r(chunk.payload);

  // Parse and validate the entire payload into locals first; `machine` and
  // `rng` are untouched until every check below has passed.
  match_params(r, machine.params());

  util::BitMatrix data = r.bitmatrix();
  if (data.rows() != machine.n() || data.cols() != machine.n()) {
    throw util::SerializeError("machine checkpoint data shape mismatch");
  }

  ecc::ArrayCode code(machine.n(), machine.m());
  const std::size_t bps = code.blocks_per_side();
  if (r.u64() != code.block_count()) {
    throw util::SerializeError("machine checkpoint block count mismatch");
  }
  for (std::size_t br = 0; br < bps; ++br) {
    for (std::size_t bc = 0; bc < bps; ++bc) {
      ecc::CheckBits& bits = code.check_bits_mutable({br, bc});
      util::BitVector leading = r.bitvector();
      util::BitVector counter = r.bitvector();
      if (leading.size() != machine.m() || counter.size() != machine.m()) {
        throw util::SerializeError("machine checkpoint check-bit size mismatch");
      }
      bits.leading = std::move(leading);
      bits.counter = std::move(counter);
    }
  }

  MachineCounters counters;
  counters.mem_cycles = r.u64();
  counters.cmem_cycles = r.u64();
  counters.critical_ops = r.u64();
  counters.checks = r.u64();
  counters.scrubs = r.u64();
  xbar::Crossbar::Counters mem_counters;
  mem_counters.cycles = r.u64();
  mem_counters.nor_ops = r.u64();
  mem_counters.init_cycles = r.u64();

  const bool has_rng = r.u8() != 0;
  util::Rng::State rng_state{};
  if (has_rng) {
    for (std::uint64_t& word : rng_state) word = r.u64();
    if ((rng_state[0] | rng_state[1] | rng_state[2] | rng_state[3]) == 0) {
      throw util::SerializeError("machine checkpoint RNG state is all-zero");
    }
  } else if (rng != nullptr) {
    throw util::SerializeError(
        "machine checkpoint holds no RNG state but one was requested");
  }
  r.require_exhausted();

  machine.restore(data, code, counters, mem_counters);
  if (rng != nullptr) rng->set_state(rng_state);
}

}  // namespace pimecc::arch
