// pimecc -- arch/reference_pim_machine.hpp
//
// Bit-serial golden model of the protected PIM machine.
//
// This is the original composition of the Section IV architecture, retained
// verbatim (modulo the uniform validate-before-mutate convention shared
// with PimMachine): the MEM runs on the bit-serial ReferenceCrossbar, check
// bits are (re)encoded block-by-block through ReferenceBlockCodec, the
// critical-operation protocol routes whole lines through the barrel-shifter
// bank into genuine XOR3 microprograms in the processing crossbars, and
// every line snapshot is peeled one bit at a time.
//
// It exists purely as the reference in differential tests and benchmarks --
// the production machine is PimMachine (pim_machine.hpp), which computes
// check-bit updates differentially on the diagword kernel and must match
// this model exactly in memory contents, check state, cycle counters,
// correction counts, and throwing behavior on any program.  Keep the two
// classes' public APIs identical (the same contract as ReferenceCrossbar vs
// Crossbar and ReferenceBlockCodec vs BlockCodec) -- the one sanctioned
// difference is the check-state accessor, which exposes each machine's own
// storage: check_memory() (physical CMEM crossbars) here vs check_code()
// (functional ArrayCode) on PimMachine; CheckMemory::matches bridges the
// two in the differential harness.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/check_memory.hpp"
#include "arch/params.hpp"
#include "arch/pim_machine.hpp"  // CheckReport, MachineCounters
#include "arch/processing_xbar.hpp"
#include "arch/shifter.hpp"
#include "core/reference_block_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"
#include "xbar/reference_crossbar.hpp"

namespace pimecc::arch {

/// Bit-serial twin of PimMachine; see file comment.
class ReferencePimMachine {
 public:
  explicit ReferencePimMachine(const ArchParams& params);

  [[nodiscard]] const ArchParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t n() const noexcept { return params_.n; }
  [[nodiscard]] std::size_t m() const noexcept { return params_.m; }

  void load(const util::BitMatrix& image);
  [[nodiscard]] const util::BitMatrix& data() const noexcept {
    return mem_.contents();
  }
  void write_row_protected(std::size_t r, const util::BitVector& values);

  void magic_nor_rows_protected(std::span<const std::size_t> in_cols,
                                std::size_t out_col,
                                std::span<const std::size_t> rows = {});
  void magic_nor_cols_protected(std::span<const std::size_t> in_rows,
                                std::size_t out_row,
                                std::span<const std::size_t> cols = {});
  void magic_init_rows_protected(std::span<const std::size_t> cols);
  void magic_init_cols_protected(std::span<const std::size_t> rows);

  CheckReport check_block_row(std::size_t row);
  CheckReport check_block_col(std::size_t col);
  CheckReport scrub();

  [[nodiscard]] bool ecc_consistent() const;

  void inject_data_error(std::size_t r, std::size_t c);
  void inject_check_error(Axis axis, std::size_t diagonal, ecc::BlockIndex block);

  [[nodiscard]] const MachineCounters& counters() const noexcept { return counters_; }
  [[nodiscard]] const CheckMemory& check_memory() const noexcept { return cmem_; }

  /// Per-row wordline-activation accounting of the MEM crossbar; identical
  /// in counts to PimMachine::mem_row_activations on any program (same
  /// contract as every other counter pair).
  [[nodiscard]] std::uint64_t mem_row_activations(std::size_t r) const {
    return mem_.row_activations(r);
  }
  [[nodiscard]] std::vector<std::uint64_t> mem_row_activation_snapshot() const {
    return mem_.row_activation_snapshot();
  }
  void reset_mem_row_activations() noexcept { mem_.reset_row_activations(); }

 private:
  void update_check_bits_for_line(bool along_rows, std::size_t line,
                                  const util::BitVector& old_line,
                                  const util::BitVector& new_line);
  CheckReport check_block_band(bool row_band, std::size_t band);
  void repair_block(ecc::BlockIndex block, const ecc::DecodeResult& result);

  ArchParams params_;
  xbar::ReferenceCrossbar mem_;
  CheckMemory cmem_;
  ProcessingXbar pc_leading_;
  ProcessingXbar pc_counter_;
  CheckingXbar checker_;
  ShifterBank shifters_;
  ecc::ReferenceBlockCodec codec_;
  MachineCounters counters_;
};

}  // namespace pimecc::arch
