// pimecc -- arch/pc_controller.hpp
//
// Cycle-accurate finite state machine driving one processing crossbar
// (paper Section IV-C: "the CMEM controller contains the Processing
// Crossbar (PC) controllers which consist of simple finite state machines
// that perform the pre-defined XOR3 steps").
//
// The FSM advances one state per clock: three operand-transfer states, the
// eight NOR states of the XOR3 microprogram, then write-back.  step() is
// called once per cycle by the CMEM controller; the data path runs on a
// real ProcessingXbar so functional results and cycle counts come from the
// same machinery the rest of the architecture model uses.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <vector>

#include "arch/processing_xbar.hpp"
#include "util/bitvector.hpp"

namespace pimecc::arch {

/// FSM states, in execution order.
enum class PcState : std::uint8_t {
  kIdle,
  kInit,       ///< batched LRS-init of the working cells
  kLoadOld,    ///< MEM -> PC transfer of the old data line
  kLoadCheck,  ///< CBX -> PC transfer of the stored parities
  kLoadNew,    ///< MEM -> PC transfer of the new data line
  kNor1, kNor2, kNor3, kNor4, kNor5, kNor6, kNor7, kNor8,
  kWriteBack,  ///< PC -> CBX transfer of the updated parities
  kDone,
};

[[nodiscard]] constexpr const char* to_string(PcState s) noexcept {
  switch (s) {
    case PcState::kIdle: return "idle";
    case PcState::kInit: return "init";
    case PcState::kLoadOld: return "load-old";
    case PcState::kLoadCheck: return "load-check";
    case PcState::kLoadNew: return "load-new";
    case PcState::kNor1: return "nor1";
    case PcState::kNor2: return "nor2";
    case PcState::kNor3: return "nor3";
    case PcState::kNor4: return "nor4";
    case PcState::kNor5: return "nor5";
    case PcState::kNor6: return "nor6";
    case PcState::kNor7: return "nor7";
    case PcState::kNor8: return "nor8";
    case PcState::kWriteBack: return "write-back";
    case PcState::kDone: return "done";
  }
  return "?";
}

/// One processing-crossbar controller.
class PcController {
 public:
  explicit PcController(std::size_t lanes);

  [[nodiscard]] PcState state() const noexcept { return state_; }
  [[nodiscard]] bool busy() const noexcept {
    return state_ != PcState::kIdle && state_ != PcState::kDone;
  }
  [[nodiscard]] std::uint64_t cycles_elapsed() const noexcept { return cycles_; }

  /// Latches the three operands and arms the FSM (the CMEM controller has
  /// routed the lines; transfers themselves happen in the LOAD states).
  /// Throws std::logic_error if the FSM is busy.
  void start(util::BitVector old_line, util::BitVector check_line,
             util::BitVector new_line);

  /// Queues one continuous update behind the FSM -- the CMEM controller's
  /// batched check-memory traffic.  Operand sizes are validated *before*
  /// any state changes (a throwing call leaves FSM and queue untouched).
  /// If the FSM is idle the update is armed immediately; otherwise it
  /// starts automatically on the cycle after the previous write-back
  /// retires, so back-to-back updates need no controller round-trip.
  void enqueue(util::BitVector old_line, util::BitVector check_line,
               util::BitVector new_line);
  /// Updates waiting behind the in-flight one.
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

  /// Advances one clock.  Returns the updated check bits exactly once, on
  /// the write-back cycle.
  std::optional<util::BitVector> step();

  /// Convenience: run to completion, returning the write-back value and the
  /// number of cycles consumed (13 = init + 3 transfers + 8 NORs + wb).
  struct RunResult {
    util::BitVector updated_check;
    std::uint64_t cycles = 0;
  };
  RunResult run_to_completion();

  /// Convenience over a queued batch: runs until FSM and queue drain,
  /// returning one write-back value per update plus the total cycle count
  /// (13 per update -- the batch pipelines with no idle cycles between).
  struct BatchResult {
    std::vector<util::BitVector> updated_checks;
    std::uint64_t cycles = 0;
  };
  BatchResult run_batch_to_completion();

  /// Resets to idle and drops any queued updates (a controller abort).
  void reset() noexcept {
    state_ = PcState::kIdle;
    queue_.clear();
  }

 private:
  [[nodiscard]] static PcState next(PcState s) noexcept {
    return s == PcState::kDone ? PcState::kDone
                               : static_cast<PcState>(static_cast<int>(s) + 1);
  }

  struct QueuedUpdate {
    util::BitVector old_line;
    util::BitVector check_line;
    util::BitVector new_line;
  };

  void require_lane_widths(const util::BitVector& old_line,
                           const util::BitVector& check_line,
                           const util::BitVector& new_line) const;

  ProcessingXbar xbar_;
  PcState state_ = PcState::kIdle;
  std::uint64_t cycles_ = 0;
  util::BitVector pending_old_;
  util::BitVector pending_check_;
  util::BitVector pending_new_;
  std::deque<QueuedUpdate> queue_;
};

}  // namespace pimecc::arch
