#include "arch/check_memory.hpp"

#include <stdexcept>

namespace pimecc::arch {

CheckMemory::CheckMemory(const ArchParams& params)
    // Validate before blocks_per_side(): it divides by m, so an invalid
    // m = 0 must throw rather than reach the division.
    : m_((params.validate(), params.m)), blocks_(params.blocks_per_side()) {
  xbars_.reserve(2 * m_);
  for (std::size_t i = 0; i < 2 * m_; ++i) {
    xbars_.emplace_back(blocks_, blocks_);
  }
}

const xbar::Crossbar& CheckMemory::xb(Axis axis, std::size_t diagonal) const {
  if (diagonal >= m_) {
    throw std::out_of_range("CheckMemory: diagonal index out of range");
  }
  return xbars_[(axis == Axis::kLeading ? 0 : m_) + diagonal];
}

xbar::Crossbar& CheckMemory::xb(Axis axis, std::size_t diagonal) {
  return const_cast<xbar::Crossbar&>(
      static_cast<const CheckMemory*>(this)->xb(axis, diagonal));
}

void CheckMemory::require_block(ecc::BlockIndex block) const {
  if (block.block_row >= blocks_ || block.block_col >= blocks_) {
    throw std::out_of_range("CheckMemory: block index out of range");
  }
}

bool CheckMemory::get(Axis axis, std::size_t diagonal, ecc::BlockIndex block) const {
  require_block(block);
  return xb(axis, diagonal).peek(block.block_col, block.block_row);
}

void CheckMemory::set(Axis axis, std::size_t diagonal, ecc::BlockIndex block,
                      bool value) {
  require_block(block);
  xb(axis, diagonal).poke(block.block_col, block.block_row, value);
}

bool CheckMemory::flip(Axis axis, std::size_t diagonal, ecc::BlockIndex block) {
  const bool next = !get(axis, diagonal, block);
  set(axis, diagonal, block, next);
  return next;
}

ecc::CheckBits CheckMemory::gather_block(ecc::BlockIndex block) const {
  ecc::CheckBits bits(m_);
  for (std::size_t d = 0; d < m_; ++d) {
    bits.leading.set(d, get(Axis::kLeading, d, block));
    bits.counter.set(d, get(Axis::kCounter, d, block));
  }
  return bits;
}

void CheckMemory::store_block(ecc::BlockIndex block, const ecc::CheckBits& bits) {
  if (bits.leading.size() != m_ || bits.counter.size() != m_) {
    throw std::invalid_argument("CheckMemory::store_block: wrong check-bit size");
  }
  for (std::size_t d = 0; d < m_; ++d) {
    set(Axis::kLeading, d, block, bits.leading.get(d));
    set(Axis::kCounter, d, block, bits.counter.get(d));
  }
}

void CheckMemory::load_from(const ecc::ArrayCode& code) {
  if (code.m() != m_ || code.blocks_per_side() != blocks_) {
    throw std::invalid_argument("CheckMemory::load_from: geometry mismatch");
  }
  for (std::size_t br = 0; br < blocks_; ++br) {
    for (std::size_t bc = 0; bc < blocks_; ++bc) {
      store_block({br, bc}, code.check_bits({br, bc}));
    }
  }
}

void CheckMemory::store_to(ecc::ArrayCode& code) const {
  if (code.m() != m_ || code.blocks_per_side() != blocks_) {
    throw std::invalid_argument("CheckMemory::store_to: geometry mismatch");
  }
  for (std::size_t br = 0; br < blocks_; ++br) {
    for (std::size_t bc = 0; bc < blocks_; ++bc) {
      code.check_bits_mutable({br, bc}) = gather_block({br, bc});
    }
  }
}

bool CheckMemory::matches(const ecc::ArrayCode& code) const {
  if (code.m() != m_ || code.blocks_per_side() != blocks_) return false;
  for (std::size_t br = 0; br < blocks_; ++br) {
    for (std::size_t bc = 0; bc < blocks_; ++bc) {
      if (!(gather_block({br, bc}) == code.check_bits({br, bc}))) return false;
    }
  }
  return true;
}

util::BitVector CheckMemory::read_diagonal_row(Axis axis, std::size_t diagonal,
                                               std::size_t block_row) const {
  if (block_row >= blocks_) {
    throw std::out_of_range("CheckMemory: block row out of range");
  }
  util::BitVector out(blocks_);
  for (std::size_t bc = 0; bc < blocks_; ++bc) {
    out.set(bc, get(axis, diagonal, {block_row, bc}));
  }
  return out;
}

void CheckMemory::write_diagonal_row(Axis axis, std::size_t diagonal,
                                     std::size_t block_row,
                                     const util::BitVector& values) {
  if (block_row >= blocks_ || values.size() != blocks_) {
    throw std::invalid_argument("CheckMemory::write_diagonal_row: bad arguments");
  }
  for (std::size_t bc = 0; bc < blocks_; ++bc) {
    set(axis, diagonal, {block_row, bc}, values.get(bc));
  }
}

util::BitVector CheckMemory::read_diagonal_col(Axis axis, std::size_t diagonal,
                                               std::size_t block_col) const {
  if (block_col >= blocks_) {
    throw std::out_of_range("CheckMemory: block column out of range");
  }
  util::BitVector out(blocks_);
  for (std::size_t br = 0; br < blocks_; ++br) {
    out.set(br, get(axis, diagonal, {br, block_col}));
  }
  return out;
}

void CheckMemory::write_diagonal_col(Axis axis, std::size_t diagonal,
                                     std::size_t block_col,
                                     const util::BitVector& values) {
  if (block_col >= blocks_ || values.size() != blocks_) {
    throw std::invalid_argument("CheckMemory::write_diagonal_col: bad arguments");
  }
  for (std::size_t br = 0; br < blocks_; ++br) {
    set(axis, diagonal, {br, block_col}, values.get(br));
  }
}

CheckingXbar::CheckingXbar(const ArchParams& params) : n_(params.n), m_(params.m) {
  params.validate();
}

util::BitVector CheckingXbar::nonzero_flags(
    const std::vector<ecc::Syndrome>& syndromes) {
  util::BitVector flags(syndromes.size());
  for (std::size_t b = 0; b < syndromes.size(); ++b) {
    const ecc::Syndrome& s = syndromes[b];
    if (s.leading.size() != m_ || s.counter.size() != m_) {
      throw std::invalid_argument("CheckingXbar: syndrome has wrong size");
    }
    flags.set(b, !s.clean());
  }
  // One multi-input MAGIC NOR per block (row-parallel, 1 cycle for all
  // blocks) + one NOT to obtain the positive flag.
  cycles_ += 2;
  return flags;
}

}  // namespace pimecc::arch
