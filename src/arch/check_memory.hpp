// pimecc -- arch/check_memory.hpp
//
// Physical layout of the Check Memory (CMEM) check-bit storage and the
// checking crossbar (paper Section IV-A, Figure 4).
//
// Check bits live in 2m small crossbars of dimension (n/m) x (n/m): m for
// leading diagonals and m for counter diagonals (the paper describes the
// leading half "without loss of generality"; Table II counts both:
// 2 x m x (n/m)^2).  Crossbar i of an axis holds, at cell (a, b), the check
// bit of diagonal i of the block a blocks from the left and b from the top.
// Splitting by diagonal index is what lets one connection-unit operation
// address "the ith diagonal of every block in a block-row/column" at once.
#pragma once

#include <cstddef>
#include <vector>

#include "arch/params.hpp"
#include "core/array_code.hpp"
#include "core/block_code.hpp"
#include "util/bitvector.hpp"
#include "xbar/crossbar.hpp"

namespace pimecc::arch {

/// Which diagonal family a check bit belongs to.
enum class Axis : unsigned char { kLeading, kCounter };

/// Check-bit storage as 2m physical crossbars.
class CheckMemory {
 public:
  explicit CheckMemory(const ArchParams& params);

  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  [[nodiscard]] std::size_t blocks_per_side() const noexcept { return blocks_; }

  /// Read/write one check bit (golden-model access, no cycle cost).
  [[nodiscard]] bool get(Axis axis, std::size_t diagonal,
                         ecc::BlockIndex block) const;
  void set(Axis axis, std::size_t diagonal, ecc::BlockIndex block, bool value);
  /// Flips one check bit (fault injection); returns the new value.
  bool flip(Axis axis, std::size_t diagonal, ecc::BlockIndex block);

  /// Gathers the 2m check bits of one block.
  [[nodiscard]] ecc::CheckBits gather_block(ecc::BlockIndex block) const;
  /// Stores the 2m check bits of one block.
  void store_block(ecc::BlockIndex block, const ecc::CheckBits& bits);

  /// Loads every block's check bits from a functional ArrayCode.
  void load_from(const ecc::ArrayCode& code);
  /// Copies every block's check bits into a functional ArrayCode.
  void store_to(ecc::ArrayCode& code) const;

  /// True iff contents equal `code`'s check bits exactly.
  [[nodiscard]] bool matches(const ecc::ArrayCode& code) const;

  /// Vector of check bits for diagonal `diagonal` of every block in
  /// block-row `block_row` (what the connection unit presents to a PC for a
  /// row-oriented update), length n/m.
  [[nodiscard]] util::BitVector read_diagonal_row(Axis axis, std::size_t diagonal,
                                                  std::size_t block_row) const;
  /// Writes the same shape back.
  void write_diagonal_row(Axis axis, std::size_t diagonal, std::size_t block_row,
                          const util::BitVector& values);
  /// Column-of-blocks variants (for column-parallel MEM operations).
  [[nodiscard]] util::BitVector read_diagonal_col(Axis axis, std::size_t diagonal,
                                                  std::size_t block_col) const;
  void write_diagonal_col(Axis axis, std::size_t diagonal, std::size_t block_col,
                          const util::BitVector& values);

 private:
  [[nodiscard]] const xbar::Crossbar& xb(Axis axis, std::size_t diagonal) const;
  [[nodiscard]] xbar::Crossbar& xb(Axis axis, std::size_t diagonal);
  /// Throws std::out_of_range on a bad block index -- before any state is
  /// touched (poke is an unchecked accessor, so set/flip would otherwise
  /// write out of bounds).
  void require_block(ecc::BlockIndex block) const;

  std::size_t m_;
  std::size_t blocks_;
  // Index: axis-major, diagonal-minor; each crossbar cell (a, b) = block
  // a-from-left (block_col), b-from-top (block_row).
  std::vector<xbar::Crossbar> xbars_;
};

/// Checking crossbar: evaluates which block syndromes are non-zero (paper
/// Section IV-A-4).  Functionally, block b's flag is the OR of its 2m
/// syndrome bits; in MAGIC this is one multi-input NOR into a flag cell
/// plus one NOT, independent of the number of blocks (row-parallel).
class CheckingXbar {
 public:
  explicit CheckingXbar(const ArchParams& params);

  /// Number of memristors (Table II: 2 x n -- n/m blocks x 2m syndrome bits).
  [[nodiscard]] std::size_t memristor_count() const noexcept { return 2 * n_; }

  /// Flags non-zero syndromes; `syndromes` holds one entry per block along
  /// a block-row/column (length n/m).  Adds 2 cycles of CMEM latency.
  [[nodiscard]] util::BitVector nonzero_flags(
      const std::vector<ecc::Syndrome>& syndromes);

  [[nodiscard]] std::uint64_t cycles() const noexcept { return cycles_; }

 private:
  std::size_t n_;
  std::size_t m_;
  std::uint64_t cycles_ = 0;
};

}  // namespace pimecc::arch
