#include "arch/reference_pim_machine.hpp"

#include <stdexcept>

#include "arch/arch_checks.hpp"
#include "arch/scheduler.hpp"  // xor3_fold_levels

namespace pimecc::arch {

ReferencePimMachine::ReferencePimMachine(const ArchParams& params)
    : params_(params),
      mem_((params.validate(), params.n), params.n),
      cmem_(params),
      pc_leading_(params.n),
      pc_counter_(params.n),
      checker_(params),
      shifters_(params.n, params.m),
      codec_(params.m) {}

void ReferencePimMachine::load(const util::BitMatrix& image) {
  if (image.rows() != n() || image.cols() != n()) {
    throw std::invalid_argument("PimMachine::load: image must be n x n");
  }
  for (std::size_t r = 0; r < n(); ++r) {
    mem_.write_row(r, image.row(r));
  }
  // Initial encode: computed block-by-block through the CMEM datapath
  // equivalent (functionally identical to the codec's encode).
  for (std::size_t br = 0; br < params_.blocks_per_side(); ++br) {
    for (std::size_t bc = 0; bc < params_.blocks_per_side(); ++bc) {
      cmem_.store_block({br, bc},
                        codec_.encode(mem_.contents(), br * m(), bc * m()));
    }
  }
  counters_.mem_cycles = mem_.cycles();
}

void ReferencePimMachine::update_check_bits_for_line(
    bool along_rows, std::size_t line, const util::BitVector& old_line,
    const util::BitVector& new_line) {
  const std::size_t groups = params_.blocks_per_side();
  const std::size_t band = line / m();  // block column (row op) or block row
  const std::size_t rem = line % m();

  // Shifter alignments (see arch/shifter.hpp): for a written column
  // (row-parallel op), leading diagonals align under shift = line mod m and
  // counter diagonals under shift = (-line) mod m; for a written row the
  // counter family additionally runs mirrored.
  const std::size_t neg_rem = (m() - rem) % m();
  const std::size_t lead_shift = rem;
  const std::size_t cnt_shift = neg_rem;
  const bool cnt_reversed = !along_rows;

  const auto old_lead = shifters_.route(old_line, lead_shift, false);
  const auto new_lead = shifters_.route(new_line, lead_shift, false);
  const auto old_cnt = shifters_.route(old_line, cnt_shift, cnt_reversed);
  const auto new_cnt = shifters_.route(new_line, cnt_shift, cnt_reversed);

  auto run_axis = [&](Axis axis, ProcessingXbar& pc,
                      const std::vector<util::BitVector>& old_vecs,
                      const std::vector<util::BitVector>& new_vecs) {
    // Concatenate the m per-diagonal vectors into the PC's n lanes.
    util::BitVector a(n()), b(n()), c(n());
    for (std::size_t d = 0; d < m(); ++d) {
      const util::BitVector stored =
          along_rows ? cmem_.read_diagonal_col(axis, d, band)
                     : cmem_.read_diagonal_row(axis, d, band);
      for (std::size_t g = 0; g < groups; ++g) {
        a.set(d * groups + g, old_vecs[d].get(g));
        b.set(d * groups + g, new_vecs[d].get(g));
        c.set(d * groups + g, stored.get(g));
      }
    }
    pc.init_working_cells();
    pc.load_operand(ProcessingXbar::kA, a);
    pc.load_operand(ProcessingXbar::kB, b);
    pc.load_operand(ProcessingXbar::kC, c);
    pc.compute();
    const util::BitVector updated = pc.writeback_values();
    for (std::size_t d = 0; d < m(); ++d) {
      util::BitVector slice(groups);
      for (std::size_t g = 0; g < groups; ++g) {
        slice.set(g, updated.get(d * groups + g));
      }
      if (along_rows) {
        cmem_.write_diagonal_col(axis, d, band, slice);
      } else {
        cmem_.write_diagonal_row(axis, d, band, slice);
      }
    }
  };

  run_axis(Axis::kLeading, pc_leading_, old_lead, new_lead);
  run_axis(Axis::kCounter, pc_counter_, old_cnt, new_cnt);

  // Protocol cost: two MEM->CMEM transfers serialize with the MEM; the
  // XOR3 passes and write-backs run in the CMEM.
  counters_.mem_cycles += 2 * params_.transfer_cycles;
  counters_.cmem_cycles +=
      params_.transfer_cycles + params_.xor3_cycles + params_.writeback_cycles;
  ++counters_.critical_ops;
}

void ReferencePimMachine::write_row_protected(std::size_t r,
                                              const util::BitVector& values) {
  detail::require_index(r, n(), "row");
  if (values.size() != n()) {
    throw std::invalid_argument("PimMachine::write_row_protected: size mismatch");
  }
  const util::BitVector old_line = mem_.contents().row(r);
  mem_.write_row(r, values);
  counters_.mem_cycles = mem_.cycles();
  update_check_bits_for_line(false, r, old_line, values);
}

void ReferencePimMachine::magic_nor_rows_protected(
    std::span<const std::size_t> in_cols, std::size_t out_col,
    std::span<const std::size_t> rows) {
  detail::require_indices(in_cols, n(), "input column");
  detail::require_index(out_col, n(), "output column");
  detail::require_distinct(rows, n(), "row lane");
  const util::BitVector old_line = mem_.contents().column(out_col);
  mem_.magic_nor(xbar::Orientation::kRow, in_cols, out_col, rows);
  const util::BitVector new_line = mem_.contents().column(out_col);
  counters_.mem_cycles = mem_.cycles();
  update_check_bits_for_line(true, out_col, old_line, new_line);
}

void ReferencePimMachine::magic_nor_cols_protected(
    std::span<const std::size_t> in_rows, std::size_t out_row,
    std::span<const std::size_t> cols) {
  detail::require_indices(in_rows, n(), "input row");
  detail::require_index(out_row, n(), "output row");
  detail::require_distinct(cols, n(), "column lane");
  const util::BitVector old_line = mem_.contents().row(out_row);
  mem_.magic_nor(xbar::Orientation::kColumn, in_rows, out_row, cols);
  const util::BitVector new_line = mem_.contents().row(out_row);
  counters_.mem_cycles = mem_.cycles();
  update_check_bits_for_line(false, out_row, old_line, new_line);
}

void ReferencePimMachine::magic_init_rows_protected(
    std::span<const std::size_t> cols) {
  detail::require_distinct(cols, n(), "init column");
  std::vector<util::BitVector> old_lines;
  old_lines.reserve(cols.size());
  for (const std::size_t c : cols) old_lines.push_back(mem_.contents().column(c));
  mem_.magic_init(xbar::Orientation::kRow, cols);
  counters_.mem_cycles = mem_.cycles();
  for (std::size_t i = 0; i < cols.size(); ++i) {
    update_check_bits_for_line(true, cols[i], old_lines[i],
                               mem_.contents().column(cols[i]));
  }
}

void ReferencePimMachine::magic_init_cols_protected(
    std::span<const std::size_t> rows) {
  detail::require_distinct(rows, n(), "init row");
  std::vector<util::BitVector> old_lines;
  old_lines.reserve(rows.size());
  for (const std::size_t r : rows) old_lines.push_back(mem_.contents().row(r));
  mem_.magic_init(xbar::Orientation::kColumn, rows);
  counters_.mem_cycles = mem_.cycles();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    update_check_bits_for_line(false, rows[i], old_lines[i],
                               mem_.contents().row(rows[i]));
  }
}

void ReferencePimMachine::repair_block(ecc::BlockIndex block,
                                       const ecc::DecodeResult& result) {
  switch (result.status) {
    case ecc::DecodeStatus::kCorrectedData: {
      const ecc::Cell cell = *result.data_error;
      mem_.contents_mutable().flip(block.block_row * m() + cell.r,
                                   block.block_col * m() + cell.c);
      break;
    }
    case ecc::DecodeStatus::kCorrectedCheck: {
      const ecc::CheckBitLocation loc = *result.check_error;
      cmem_.flip(loc.on_leading_axis ? Axis::kLeading : Axis::kCounter, loc.index,
                 block);
      break;
    }
    case ecc::DecodeStatus::kClean:
    case ecc::DecodeStatus::kDetectedUncorrectable:
      break;
  }
}

CheckReport ReferencePimMachine::check_block_band(bool row_band, std::size_t band) {
  if (band >= params_.blocks_per_side()) {
    throw std::out_of_range("PimMachine: block band out of range");
  }
  CheckReport report;
  std::vector<ecc::Syndrome> syndromes;
  std::vector<ecc::BlockIndex> blocks;
  for (std::size_t j = 0; j < params_.blocks_per_side(); ++j) {
    const ecc::BlockIndex block =
        row_band ? ecc::BlockIndex{band, j} : ecc::BlockIndex{j, band};
    const ecc::CheckBits stored = cmem_.gather_block(block);
    syndromes.push_back(codec_.compute_syndrome(
        mem_.contents(), block.block_row * m(), block.block_col * m(), stored));
    blocks.push_back(block);
  }
  const util::BitVector flags = checker_.nonzero_flags(syndromes);
  for (std::size_t j = 0; j < blocks.size(); ++j) {
    ++report.blocks_checked;
    if (!flags.get(j)) continue;
    const ecc::DecodeResult verdict = codec_.classify(syndromes[j]);
    repair_block(blocks[j], verdict);
    switch (verdict.status) {
      case ecc::DecodeStatus::kCorrectedData: ++report.corrected_data; break;
      case ecc::DecodeStatus::kCorrectedCheck: ++report.corrected_check; break;
      case ecc::DecodeStatus::kDetectedUncorrectable: ++report.uncorrectable; break;
      case ecc::DecodeStatus::kClean: break;
    }
  }
  // Cost model: m MEM copy cycles; the XOR3 fold tree, syndrome compare and
  // flag evaluation run in the CMEM off the MEM's critical path.
  counters_.mem_cycles += m();
  counters_.cmem_cycles += xor3_fold_levels(m() + 1) * params_.xor3_cycles + 2 + 1;
  ++counters_.checks;
  return report;
}

CheckReport ReferencePimMachine::check_block_row(std::size_t row) {
  detail::require_index(row, n(), "row");
  return check_block_band(true, row / m());
}

CheckReport ReferencePimMachine::check_block_col(std::size_t col) {
  detail::require_index(col, n(), "column");
  return check_block_band(false, col / m());
}

CheckReport ReferencePimMachine::scrub() {
  CheckReport total;
  for (std::size_t band = 0; band < params_.blocks_per_side(); ++band) {
    const CheckReport r = check_block_band(true, band);
    total.blocks_checked += r.blocks_checked;
    total.corrected_data += r.corrected_data;
    total.corrected_check += r.corrected_check;
    total.uncorrectable += r.uncorrectable;
  }
  ++counters_.scrubs;
  return total;
}

bool ReferencePimMachine::ecc_consistent() const {
  for (std::size_t br = 0; br < params_.blocks_per_side(); ++br) {
    for (std::size_t bc = 0; bc < params_.blocks_per_side(); ++bc) {
      const ecc::CheckBits fresh =
          codec_.encode(mem_.contents(), br * m(), bc * m());
      if (!(fresh == cmem_.gather_block({br, bc}))) return false;
    }
  }
  return true;
}

void ReferencePimMachine::inject_data_error(std::size_t r, std::size_t c) {
  detail::require_index(r, n(), "row");
  detail::require_index(c, n(), "column");
  mem_.contents_mutable().flip(r, c);
}

void ReferencePimMachine::inject_check_error(Axis axis, std::size_t diagonal,
                                             ecc::BlockIndex block) {
  detail::require_index(diagonal, m(), "diagonal");
  cmem_.flip(axis, diagonal, block);
}

}  // namespace pimecc::arch
