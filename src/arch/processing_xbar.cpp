#include "arch/processing_xbar.hpp"

#include <array>
#include <stdexcept>

namespace pimecc::arch {

ProcessingXbar::ProcessingXbar(std::size_t lanes) : xbar_(lanes, kColumns) {
  if (lanes == 0) {
    throw std::invalid_argument("ProcessingXbar: need at least one lane");
  }
}

void ProcessingXbar::init_working_cells() {
  static constexpr std::array<std::size_t, 8> kWorking = {kN1, kN2, kN3, kT,
                                                          kM1, kM2, kM3, kResult};
  xbar_.magic_init(xbar::Orientation::kRow, kWorking);
}

void ProcessingXbar::load_operand(Column slot, const util::BitVector& true_values) {
  if (slot != kA && slot != kB && slot != kC) {
    throw std::invalid_argument("ProcessingXbar: operand slot must be A, B or C");
  }
  if (true_values.size() != lanes()) {
    throw std::invalid_argument("ProcessingXbar: operand length must equal lanes");
  }
  // Inter-crossbar MAGIC NOT: the receiving cells store the complement.
  // Modeled as a one-cycle column write of the inverted vector.
  xbar_.write_column(slot, ~true_values);
}

void ProcessingXbar::compute() {
  using O = xbar::Orientation;
  auto nor2 = [&](std::size_t x, std::size_t y, std::size_t out) {
    const std::size_t ins[2] = {x, y};
    const xbar::OpResult r = xbar_.magic_nor(O::kRow, ins, out);
    if (r.violations != 0) {
      throw std::logic_error(
          "ProcessingXbar::compute: output cell not initialized (call "
          "init_working_cells before compute)");
    }
  };
  // t = XNOR(a, b): NOR(n2, n3) with n2 = a' AND b = ..., classic 4-NOR XNOR.
  nor2(kA, kB, kN1);
  nor2(kA, kN1, kN2);
  nor2(kB, kN1, kN3);
  nor2(kN2, kN3, kT);
  // result = XNOR(t, c).
  nor2(kT, kC, kM1);
  nor2(kT, kM1, kM2);
  nor2(kC, kM1, kM3);
  nor2(kM2, kM3, kResult);
}

util::BitVector ProcessingXbar::result_raw() const {
  return xbar_.contents().column(kResult);
}

util::BitVector ProcessingXbar::writeback_values() const {
  // The write-back transfer is another inverting MAGIC NOT.
  return ~result_raw();
}

util::BitVector xor3_reference(const util::BitVector& a, const util::BitVector& b,
                               const util::BitVector& c) {
  return a ^ b ^ c;
}

}  // namespace pimecc::arch
