#include "arch/device_count.hpp"

namespace pimecc::arch {

double DeviceCounts::memristor_overhead_fraction() const noexcept {
  if (rows.empty() || rows.front().memristors == 0) return 0.0;
  const double data = static_cast<double>(rows.front().memristors);
  return (static_cast<double>(total_memristors) - data) / data;
}

DeviceCounts count_devices(const ArchParams& params) {
  params.validate();
  const std::uint64_t n = params.n;
  const std::uint64_t m = params.m;
  const std::uint64_t k = params.num_pcs;
  const std::uint64_t blocks = n / m;

  DeviceCounts out;
  out.rows = {
      {"Data (MEM)", n * n, 0, "n x n"},
      {"Check-Bits", 2 * m * blocks * blocks, 0, "2 x m x (n/m)^2"},
      {"Processing XBs", 2 * 11 * k * n, 0, "2 x 11 x k x n"},
      {"Checking XB", 2 * n, 0, "2 x n"},
      {"Shifters", 0, 4 * n * m, "4 x n x m"},
      {"Connection Unit", 0, 2 * n * (k + 4), "2 x n x (k + 4)"},
  };
  for (const auto& row : out.rows) {
    out.total_memristors += row.memristors;
    out.total_transistors += row.transistors;
  }
  return out;
}

}  // namespace pimecc::arch
