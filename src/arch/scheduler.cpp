#include "arch/scheduler.hpp"

#include <algorithm>

namespace pimecc::arch {

std::uint64_t xor3_fold_levels(std::uint64_t count) noexcept {
  std::uint64_t levels = 0;
  while (count > 1) {
    // Each level groups triples; a final pair folds via an XOR3 with one
    // zero operand (without the special case, 2/3 + 2%3 == 2 never
    // converges).
    count = count == 2 ? 1 : count / 3 + count % 3;
    ++levels;
  }
  return levels;
}

std::uint64_t CalendarResource::reserve(std::uint64_t earliest) {
  // Hop the skip chain to the first free cycle >= earliest.  The invariant
  // busy_[t] = u  <=>  cycles [t, u) all taken guarantees no free cycle is
  // skipped, so the result equals linear probing's.
  std::uint64_t t = earliest;
  path_.clear();
  for (auto it = busy_.find(t); it != busy_.end(); it = busy_.find(t)) {
    path_.push_back(t);
    t = it->second;
  }
  busy_.emplace(t, t + 1);
  // Path compression: every chain entry walked now skips straight past t
  // (all cycles in between were already taken, and t just became so).
  for (const std::uint64_t u : path_) busy_[u] = t + 1;
  return t;
}

ProtocolScheduler::ProtocolScheduler(const ArchParams& params) : params_(params) {
  params_.validate();
  pc_free_.assign(params_.num_pcs, 0);
}

std::uint64_t ProtocolScheduler::mem_reserve_tracking_stalls(std::uint64_t earliest,
                                                             const char* label) {
  const std::uint64_t free_at = mem_.next_free();
  const std::uint64_t t = mem_.reserve(earliest);
  if (t > free_at) stats_.stall_cycles += t - free_at;
  ++stats_.mem_cycles;
  stats_.mem_last_end = t + 1;
  note_event_end(t + 1);
  record(t, 1, ScheduledEvent::Unit::kMem, label);
  return t;
}

std::uint64_t ProtocolScheduler::reserve_pc_pass(std::uint64_t earliest,
                                                 std::uint64_t span,
                                                 const char* label) {
  auto it = std::min_element(pc_free_.begin(), pc_free_.end());
  const std::uint64_t start = std::max(earliest, *it);
  *it = start + span;
  note_event_end(start + span);
  record(start, span, ScheduledEvent::Unit::kPc, label);
  return start;
}

std::uint64_t ProtocolScheduler::pc_pair_ready() const noexcept {
  if (pc_free_.size() < 2) return pc_free_.front();
  std::uint64_t first = ~std::uint64_t{0};
  std::uint64_t second = ~std::uint64_t{0};
  for (const std::uint64_t t : pc_free_) {
    if (t < first) {
      second = first;
      first = t;
    } else if (t < second) {
      second = t;
    }
  }
  return second;
}

std::uint64_t ProtocolScheduler::hazard_ready(CheckCellKey key) const {
  if (params_.hazard == HazardPolicy::kForward) return 0;
  const auto it = hazards_.find(key);
  return it == hazards_.end() ? 0 : it->second;
}

void ProtocolScheduler::note_hazard(CheckCellKey key, std::uint64_t ready) {
  if (params_.hazard == HazardPolicy::kStall) {
    auto [it, inserted] = hazards_.try_emplace(key, ready);
    if (!inserted) it->second = std::max(it->second, ready);
  }
}

void ProtocolScheduler::note_event_end(std::uint64_t end) {
  last_event_end_ = std::max(last_event_end_, end);
}

void ProtocolScheduler::schedule_input_check() {
  // m MAGIC-NOT copies of the spanned block-row into the CMEM.
  std::uint64_t last_copy_end = 0;
  for (std::size_t i = 0; i < params_.m; ++i) {
    const std::uint64_t t = mem_reserve_tracking_stalls(0, "check-copy");
    ++stats_.input_check_cycles;
    last_copy_end = t + 1;
  }
  // CMEM folds the m copied rows plus the stored parity with an XOR3 tree,
  // then compares syndromes to zero in the checking crossbar (2 cycles) and
  // the controller senses the flags (1 cycle).  This occupies one PC.
  const std::uint64_t levels = xor3_fold_levels(params_.m + 1);
  const std::uint64_t tree_span = levels * params_.xor3_cycles;
  const std::uint64_t tree_start =
      reserve_pc_pass(last_copy_end, tree_span, "check-fold");
  check_done_ = tree_start + tree_span + 2 + 1;
  note_event_end(check_done_);
}

std::uint64_t ProtocolScheduler::schedule_plain_op() {
  ++stats_.plain_ops;
  return mem_reserve_tracking_stalls(0, "op");
}

std::uint64_t ProtocolScheduler::schedule_critical_op(CheckCellKey key) {
  ++stats_.critical_ops;
  const std::uint64_t tc = params_.transfer_cycles;
  const std::uint64_t pass_span = 3 * tc + params_.xor3_cycles +
                                  params_.writeback_cycles;
  // Old-data transfer: needs MEM and both PC passes ready to receive, and
  // any in-flight update of the same check bits to have retired (kStall).
  // With >= 2 PCs the two axis passes run in parallel, so the op can start
  // once the *second*-soonest PC frees; with one PC the passes serialize.
  const std::uint64_t earliest_old =
      std::max(pc_pair_ready(), hazard_ready(key));
  const std::uint64_t t_old = mem_reserve_tracking_stalls(earliest_old, "xfer-old");
  // Check-bit read into the PCs via the connection unit (off MEM's path).
  const std::uint64_t t_cbx_read = cbx_.reserve(t_old + tc);
  record(t_cbx_read, 1, ScheduledEvent::Unit::kCbx, "read");
  // The critical gate itself; optionally gated on the input check.
  const std::uint64_t gate_earliest =
      params_.wait_check_before_critical
          ? std::max(t_old + tc, check_done_)
          : t_old + tc;
  const std::uint64_t t_gate =
      mem_reserve_tracking_stalls(gate_earliest, "critical-gate");
  // New-data transfer.
  const std::uint64_t t_new = mem_reserve_tracking_stalls(t_gate + 1, "xfer-new");
  // XOR3 starts once all three operands arrived.
  const std::uint64_t compute_start =
      std::max(t_new + tc, t_cbx_read + tc);
  const std::uint64_t compute_end = compute_start + params_.xor3_cycles;
  // Write-back through the connection unit.
  const std::uint64_t t_wb = cbx_.reserve(compute_end);
  record(t_wb, 1, ScheduledEvent::Unit::kCbx, "writeback");
  const std::uint64_t retire = t_wb + params_.writeback_cycles;
  // Both axis passes occupy PC windows ending at retirement.
  const std::uint64_t span = std::max(pass_span, retire - t_old);
  reserve_pc_pass(t_old, span, "update-lead");
  reserve_pc_pass(t_old, span, "update-counter");
  note_hazard(key, retire);
  note_event_end(retire);
  return t_gate;
}

std::uint64_t ProtocolScheduler::schedule_cancel_batch(
    const std::vector<CheckCellKey>& keys) {
  if (keys.empty()) return mem_.next_free();
  stats_.cancel_ops += keys.size();
  const std::uint64_t tc = params_.transfer_cycles;
  // Wait for any in-flight updates of the same check bits (kStall).
  std::uint64_t earliest = 0;
  for (const CheckCellKey key : keys) {
    earliest = std::max(earliest, hazard_ready(key));
  }
  // The PC pair must be free to receive the first transfer.
  earliest = std::max(earliest, pc_pair_ready());
  // One old-data line transfer per canceled cell.
  std::uint64_t first_transfer = 0;
  std::uint64_t last_transfer_end = 0;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const std::uint64_t t =
        mem_reserve_tracking_stalls(i == 0 ? earliest : 0, "xfer-cancel");
    if (i == 0) first_transfer = t;
    last_transfer_end = t + tc;
  }
  // Stored check bits join the fold tree.
  const std::uint64_t t_cbx_read = cbx_.reserve(first_transfer + tc);
  record(t_cbx_read, 1, ScheduledEvent::Unit::kCbx, "read");
  // XOR3 fold of (B old lines + stored parity) inside the PC pair.
  const std::uint64_t levels = xor3_fold_levels(keys.size() + 1);
  const std::uint64_t compute_start =
      std::max(last_transfer_end, t_cbx_read + tc);
  const std::uint64_t compute_end =
      compute_start + levels * params_.xor3_cycles;
  const std::uint64_t t_wb = cbx_.reserve(compute_end);
  record(t_wb, 1, ScheduledEvent::Unit::kCbx, "writeback");
  const std::uint64_t retire = t_wb + params_.writeback_cycles;
  const std::uint64_t span = retire - first_transfer;
  reserve_pc_pass(first_transfer, span, "cancel-lead");
  reserve_pc_pass(first_transfer, span, "cancel-counter");
  for (const CheckCellKey key : keys) note_hazard(key, retire);
  note_event_end(retire);
  return first_transfer;
}

ScheduleStats ProtocolScheduler::finish() const {
  ScheduleStats out = stats_;
  out.makespan = last_event_end_;
  return out;
}

}  // namespace pimecc::arch
