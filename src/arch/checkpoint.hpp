// pimecc -- arch/checkpoint.hpp
//
// Machine checkpoints: the complete PimMachine state (MEM image, per-block
// check bits, both counter sets) plus an optional RNG stream position, in
// the util/serialize chunk format.  A checkpoint taken mid-program restores
// into a machine with identical ArchParams and continues bit-identically --
// contents, check state, counters and all -- which is what makes long
// fault-injection and lifetime runs resumable (pinned by
// tests/test_checkpoint.cpp).
//
// Restoring is strictly validate-before-mutate: the whole payload is parsed
// and cross-checked against the target machine's parameters before any
// state is touched, so a truncated, corrupt, or geometry-mismatched file
// throws util::SerializeError and leaves the machine exactly as it was.
#pragma once

#include <cstdint>
#include <iosfwd>

#include "arch/pim_machine.hpp"
#include "util/rng.hpp"

namespace pimecc::arch {

/// Current machine-checkpoint format version (chunk magic "PIMECCMC").
inline constexpr std::uint32_t kMachineCheckpointVersion = 1;

/// Writes one checkpoint chunk for `machine`.  When `rng` is non-null its
/// stream position rides along, so a simulation loop can resume its random
/// sequence exactly where it left off.
void save_machine_checkpoint(std::ostream& os, const PimMachine& machine,
                             const util::Rng* rng = nullptr);

/// Reads one checkpoint chunk and restores it into `machine`, whose
/// ArchParams must equal the saved fingerprint field-for-field (a
/// checkpoint is a continuation, not a migration).  When `rng` is non-null
/// the saved stream position is restored into it; a checkpoint saved
/// without an RNG state then throws.  Throws util::SerializeError on any
/// defect, before mutating anything.
void load_machine_checkpoint(std::istream& is, PimMachine& machine,
                             util::Rng* rng = nullptr);

}  // namespace pimecc::arch
