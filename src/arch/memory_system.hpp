// pimecc -- arch/memory_system.hpp
//
// Multi-crossbar memory in the mMPU mold (paper Section II-A: "the overall
// memory is typically divided into numerous crossbars, connected with
// CMOS"; the proposed extensions apply to every crossbar).  A MemorySystem
// is a bank: a grid of independent PimMachine units, each with its own
// CMEM, plus a global address map and an incremental background-scrub
// schedule (the paper's periodic full-memory check, spread over time so
// the per-tick cost stays constant).
#pragma once

#include <cstdint>
#include <vector>

#include "arch/device_count.hpp"
#include "arch/pim_machine.hpp"
#include "util/rng.hpp"

namespace pimecc::arch {

/// Grid shape of a bank of crossbar units.
struct MemorySystemParams {
  ArchParams unit;              ///< per-crossbar configuration
  std::size_t unit_rows = 2;    ///< grid height, in units
  std::size_t unit_cols = 2;    ///< grid width, in units

  void validate() const;
  [[nodiscard]] std::size_t unit_count() const noexcept {
    return unit_rows * unit_cols;
  }
  [[nodiscard]] std::uint64_t data_bits() const noexcept {
    return static_cast<std::uint64_t>(unit_count()) * unit.n * unit.n;
  }
};

/// Decomposed location of one data bit.
struct GlobalAddress {
  std::size_t unit_row = 0;
  std::size_t unit_col = 0;
  std::size_t row = 0;
  std::size_t col = 0;
  bool operator==(const GlobalAddress&) const noexcept = default;
};

/// Aggregate of CheckReports across units.
struct SystemScrubReport {
  std::size_t units_checked = 0;
  std::size_t blocks_checked = 0;
  std::size_t corrected_data = 0;
  std::size_t corrected_check = 0;
  std::size_t uncorrectable = 0;
};

/// A bank of ECC-protected PIM crossbars.
class MemorySystem {
 public:
  explicit MemorySystem(const MemorySystemParams& params);

  [[nodiscard]] const MemorySystemParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] std::size_t unit_count() const noexcept {
    return params_.unit_count();
  }

  [[nodiscard]] PimMachine& unit(std::size_t unit_row, std::size_t unit_col);
  [[nodiscard]] const PimMachine& unit(std::size_t unit_row,
                                       std::size_t unit_col) const;

  /// Maps a linear data-bit index (row-major across units, then cells) to
  /// its physical location; throws std::out_of_range past data_bits().
  [[nodiscard]] GlobalAddress translate(std::uint64_t bit_index) const;

  /// Fills every unit with deterministic pseudo-random data and encodes.
  /// Draws ONE base seed from `rng` and fills unit u from substream u;
  /// units load in parallel on the shared executor with bit-identical
  /// images at any worker count.
  void load_random(util::Rng& rng);

  /// Flips `count` distinct uniformly-chosen data bits across the bank.
  std::vector<GlobalAddress> inject_random_errors(util::Rng& rng,
                                                  std::size_t count);

  /// Full check of every block of every unit.  Units scrub in parallel on
  /// the shared executor; per-unit reports merge in unit order, so the
  /// aggregate is worker-count invariant.
  SystemScrubReport scrub_all();

  /// Incremental background scrub: checks the next block-row of the next
  /// unit (round-robin) and advances the pointer.  One call is the
  /// constant-cost "tick" a controller would schedule between computations;
  /// unit_count * blocks_per_side ticks make one full pass.
  CheckReport scrub_tick();
  /// Ticks for one complete pass over the bank.
  [[nodiscard]] std::size_t ticks_per_pass() const noexcept {
    return unit_count() * params_.unit.blocks_per_side();
  }

  /// True iff every unit's CMEM matches its data exactly.
  [[nodiscard]] bool all_consistent() const;

  /// Aggregate Table II device counts over the whole bank (per-unit counts
  /// times the unit count; the inter-crossbar CMOS interconnect is outside
  /// the paper's device model).
  [[nodiscard]] DeviceCounts aggregate_device_counts() const;

 private:
  MemorySystemParams params_;
  std::vector<PimMachine> units_;
  std::size_t scrub_cursor_ = 0;
};

}  // namespace pimecc::arch
