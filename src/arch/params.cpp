#include "arch/params.hpp"

#include <stdexcept>

namespace pimecc::arch {

void ArchParams::validate() const {
  if (n == 0 || m == 0) {
    throw std::invalid_argument("ArchParams: n and m must be positive");
  }
  if (m % 2 == 0) {
    throw std::invalid_argument(
        "ArchParams: m must be odd so wrap-around diagonals uniquely index "
        "cells (paper footnote 1)");
  }
  if (n % m != 0) {
    throw std::invalid_argument("ArchParams: m must divide n");
  }
  if (num_pcs == 0) {
    throw std::invalid_argument("ArchParams: need at least one processing crossbar");
  }
  if (xor3_cycles == 0 || transfer_cycles == 0 || writeback_cycles == 0) {
    throw std::invalid_argument("ArchParams: cycle costs must be positive");
  }
}

}  // namespace pimecc::arch
