// pimecc -- arch/device_count.hpp
//
// Device-count model of the proposed architecture (paper Table II).
// Expressions are implemented exactly as printed:
//
//   Data (MEM)        memristors: n * n
//   Check-bit XBs     memristors: 2 * m * (n/m)^2
//   Processing XBs    memristors: 2 * 11 * k * n     (11 cells per XOR3 lane)
//   Checking XB       memristors: 2 * n
//   Shifters          transistors: 4 * n * m
//   Connection unit   transistors: 2 * n * (k + 4)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "arch/params.hpp"

namespace pimecc::arch {

/// One row of the Table II breakdown.
struct DeviceCountRow {
  std::string unit;
  std::uint64_t memristors = 0;
  std::uint64_t transistors = 0;
  std::string expression;
};

/// Full device-count breakdown for a parameter set.
struct DeviceCounts {
  std::vector<DeviceCountRow> rows;
  std::uint64_t total_memristors = 0;
  std::uint64_t total_transistors = 0;

  /// Overhead of all added memristors relative to the data array.
  [[nodiscard]] double memristor_overhead_fraction() const noexcept;
};

/// Evaluates the Table II expressions for the given parameters.
[[nodiscard]] DeviceCounts count_devices(const ArchParams& params);

}  // namespace pimecc::arch
