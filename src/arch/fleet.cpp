#include "arch/fleet.hpp"

#include <algorithm>
#include <stdexcept>

#include "fault/injector.hpp"
#include "util/executor.hpp"

namespace pimecc::arch {

void FleetParams::validate() const {
  if (shards == 0) {
    throw std::invalid_argument("FleetParams: fleet must have >= 1 shard");
  }
  // ArrayCode's constructor enforces the (n, m) contract (odd m dividing n).
  (void)ecc::ArrayCode(n, m);
}

CrossbarFleet::CrossbarFleet(const FleetParams& params) : params_(params) {
  params_.validate();
  data_.reserve(params_.shards);
  codes_.reserve(params_.shards);
  for (std::size_t s = 0; s < params_.shards; ++s) {
    data_.emplace_back(params_.n, params_.n);
    codes_.emplace_back(params_.n, params_.m);
  }
  counters_.resize(params_.shards);
}

void CrossbarFleet::require_shard(std::size_t shard) const {
  if (shard >= params_.shards) {
    throw std::out_of_range("CrossbarFleet: shard index out of range");
  }
}

const util::BitMatrix& CrossbarFleet::data(std::size_t shard) const {
  require_shard(shard);
  return data_[shard];
}

const ecc::ArrayCode& CrossbarFleet::code(std::size_t shard) const {
  require_shard(shard);
  return codes_[shard];
}

const ShardCounters& CrossbarFleet::counters(std::size_t shard) const {
  require_shard(shard);
  return counters_[shard];
}

FleetAddress CrossbarFleet::translate(std::uint64_t bit_index) const {
  if (bit_index >= params_.data_bits()) {
    throw std::out_of_range("CrossbarFleet::translate: address out of range");
  }
  const std::uint64_t cells_per_shard =
      static_cast<std::uint64_t>(params_.n) * params_.n;
  FleetAddress addr;
  addr.shard = static_cast<std::size_t>(bit_index / cells_per_shard);
  const std::uint64_t cell = bit_index % cells_per_shard;
  addr.row = static_cast<std::size_t>(cell / params_.n);
  addr.col = static_cast<std::size_t>(cell % params_.n);
  return addr;
}

void CrossbarFleet::load_random(util::Rng& rng) {
  const std::uint64_t base_seed = rng.next();
  util::parallel_for(
      util::Executor::shared(), params_.shards, params_.threads,
      [this, base_seed](std::size_t s) {
        util::Rng shard_rng = util::Rng::for_stream(base_seed, s);
        util::BitMatrix& image = data_[s];
        for (auto& row : image.rows_span()) {
          util::fill_random(row, shard_rng);
        }
        codes_[s].encode_all(image);
        ++counters_[s].encode_passes;
      });
}

void CrossbarFleet::load_broadcast(const util::BitMatrix& image) {
  if (image.rows() != params_.n || image.cols() != params_.n) {
    throw std::invalid_argument("CrossbarFleet::load_broadcast: image must be n x n");
  }
  util::parallel_for(util::Executor::shared(), params_.shards, params_.threads,
                     [this, &image](std::size_t s) {
                       data_[s] = image;
                       codes_[s].encode_all(data_[s]);
                       ++counters_[s].encode_passes;
                     });
}

void CrossbarFleet::encode_all() {
  util::parallel_for(util::Executor::shared(), params_.shards, params_.threads,
                     [this](std::size_t s) {
                       codes_[s].encode_all(data_[s]);
                       ++counters_[s].encode_passes;
                     });
}

FleetScrubReport CrossbarFleet::scrub_all() {
  std::vector<ecc::ScrubReport> reports(params_.shards);
  util::parallel_for(util::Executor::shared(), params_.shards, params_.threads,
                     [this, &reports](std::size_t s) {
                       reports[s] = codes_[s].scrub(data_[s]);
                       ShardCounters& c = counters_[s];
                       ++c.scrub_passes;
                       c.corrected_data += reports[s].corrected_data;
                       c.corrected_check += reports[s].corrected_check;
                       c.uncorrectable += reports[s].uncorrectable;
                     });
  FleetScrubReport total;
  for (const ecc::ScrubReport& r : reports) {  // shard order: deterministic
    ++total.shards_checked;
    total.blocks_checked += r.blocks_checked;
    total.clean += r.clean;
    total.corrected_data += r.corrected_data;
    total.corrected_check += r.corrected_check;
    total.uncorrectable += r.uncorrectable;
  }
  return total;
}

bool CrossbarFleet::all_consistent() const {
  std::vector<char> consistent(params_.shards, 0);
  util::parallel_for(util::Executor::shared(), params_.shards, params_.threads,
                     [this, &consistent](std::size_t s) {
                       consistent[s] = codes_[s].consistent_with(data_[s]) ? 1 : 0;
                     });
  return std::all_of(consistent.begin(), consistent.end(),
                     [](char ok) { return ok != 0; });
}

std::vector<FleetAddress> CrossbarFleet::inject_random_errors(
    util::Rng& rng, std::size_t count) {
  const std::uint64_t population = params_.data_bits();
  if (count > population) {
    throw std::invalid_argument(
        "CrossbarFleet::inject_random_errors: more errors than data bits");
  }
  // Sampling stays on the caller's thread so the rng draw order is fixed.
  // sample_distinct works in std::size_t; fleets are addressed in 64-bit,
  // so reject configurations a 32-bit size_t could not address (we only
  // build 64-bit targets, so this is a static guarantee in practice).
  if (population > static_cast<std::uint64_t>(~std::size_t{0})) {
    throw std::invalid_argument(
        "CrossbarFleet::inject_random_errors: fleet exceeds size_t addressing");
  }
  std::vector<std::size_t> flat;
  fault::sample_distinct(rng, static_cast<std::size_t>(population), count, flat);
  std::vector<FleetAddress> flipped;
  flipped.reserve(count);
  for (const std::size_t bit : flat) {  // sorted ascending by contract
    const FleetAddress addr = translate(bit);
    data_[addr.shard].flip(addr.row, addr.col);
    ++counters_[addr.shard].injected_faults;
    flipped.push_back(addr);
  }
  return flipped;
}

void CrossbarFleet::inject_data_error(std::size_t shard, std::size_t r,
                                      std::size_t c) {
  require_shard(shard);
  if (r >= params_.n || c >= params_.n) {
    throw std::out_of_range("CrossbarFleet::inject_data_error: cell out of range");
  }
  data_[shard].flip(r, c);
  ++counters_[shard].injected_faults;
}

ShardCounters CrossbarFleet::total_counters() const {
  ShardCounters total;
  for (const ShardCounters& c : counters_) {
    total.encode_passes += c.encode_passes;
    total.scrub_passes += c.scrub_passes;
    total.corrected_data += c.corrected_data;
    total.corrected_check += c.corrected_check;
    total.uncorrectable += c.uncorrectable;
    total.injected_faults += c.injected_faults;
  }
  return total;
}

}  // namespace pimecc::arch
