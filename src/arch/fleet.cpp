#include "arch/fleet.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "fault/injector.hpp"
#include "util/executor.hpp"

namespace pimecc::arch {

void FleetParams::validate() const {
  if (shards == 0) {
    throw std::invalid_argument("FleetParams: fleet must have >= 1 shard");
  }
  // ArrayCode's constructor enforces the (n, m) contract (odd m dividing n).
  (void)ecc::ArrayCode(n, m);
}

CrossbarFleet::CrossbarFleet(const FleetParams& params) : params_(params) {
  params_.validate();
  const std::size_t physical = params_.shards + params_.spares;
  data_.reserve(physical);
  codes_.reserve(physical);
  for (std::size_t s = 0; s < physical; ++s) {
    data_.emplace_back(params_.n, params_.n);
    codes_.emplace_back(params_.n, params_.m);
  }
  counters_.resize(physical);
  remap_.resize(params_.shards);
  for (std::size_t s = 0; s < params_.shards; ++s) remap_[s] = s;
  active_.assign(params_.shards, 1);
  // Pop spares back to front so physical slot `shards` activates first.
  spare_pool_.reserve(params_.spares);
  for (std::size_t s = physical; s > params_.shards; --s) {
    spare_pool_.push_back(s - 1);
  }
}

void CrossbarFleet::require_shard(std::size_t shard) const {
  if (shard >= params_.shards) {
    throw std::out_of_range("CrossbarFleet: shard index out of range");
  }
}

std::size_t CrossbarFleet::backing(std::size_t shard) const {
  require_shard(shard);
  if (!active_[shard]) {
    throw std::runtime_error("CrossbarFleet: shard " + std::to_string(shard) +
                             " is quarantined without a spare");
  }
  return remap_[shard];
}

const util::BitMatrix& CrossbarFleet::data(std::size_t shard) const {
  return data_[backing(shard)];
}

const ecc::ArrayCode& CrossbarFleet::code(std::size_t shard) const {
  return codes_[backing(shard)];
}

const ShardCounters& CrossbarFleet::counters(std::size_t shard) const {
  return counters_[backing(shard)];
}

FleetAddress CrossbarFleet::translate(std::uint64_t bit_index) const {
  if (bit_index >= params_.data_bits()) {
    throw std::out_of_range("CrossbarFleet::translate: address out of range");
  }
  const std::uint64_t cells_per_shard =
      static_cast<std::uint64_t>(params_.n) * params_.n;
  FleetAddress addr;
  addr.shard = static_cast<std::size_t>(bit_index / cells_per_shard);
  const std::uint64_t cell = bit_index % cells_per_shard;
  addr.row = static_cast<std::size_t>(cell / params_.n);
  addr.col = static_cast<std::size_t>(cell % params_.n);
  return addr;
}

void CrossbarFleet::load_random(util::Rng& rng) {
  const std::uint64_t base_seed = rng.next();
  util::parallel_for(
      util::Executor::shared(), params_.shards, params_.threads,
      [this, base_seed](std::size_t s) {
        if (!active_[s]) return;
        // Substream s belongs to the LOGICAL shard: a remapped shard loads
        // the exact image its retired predecessor would have.
        util::Rng shard_rng = util::Rng::for_stream(base_seed, s);
        util::BitMatrix& image = data_[remap_[s]];
        for (auto& row : image.rows_span()) {
          util::fill_random(row, shard_rng);
        }
        codes_[remap_[s]].encode_all(image);
        ++counters_[remap_[s]].encode_passes;
      });
}

void CrossbarFleet::load_broadcast(const util::BitMatrix& image) {
  if (image.rows() != params_.n || image.cols() != params_.n) {
    throw std::invalid_argument("CrossbarFleet::load_broadcast: image must be n x n");
  }
  util::parallel_for(util::Executor::shared(), params_.shards, params_.threads,
                     [this, &image](std::size_t s) {
                       if (!active_[s]) return;
                       data_[remap_[s]] = image;
                       codes_[remap_[s]].encode_all(data_[remap_[s]]);
                       ++counters_[remap_[s]].encode_passes;
                     });
}

void CrossbarFleet::encode_all() {
  util::parallel_for(util::Executor::shared(), params_.shards, params_.threads,
                     [this](std::size_t s) {
                       if (!active_[s]) return;
                       codes_[remap_[s]].encode_all(data_[remap_[s]]);
                       ++counters_[remap_[s]].encode_passes;
                     });
}

FleetScrubReport CrossbarFleet::scrub_all() {
  std::vector<ecc::ScrubReport> reports(params_.shards);
  std::vector<char> checked(params_.shards, 0);
  util::parallel_for(util::Executor::shared(), params_.shards, params_.threads,
                     [this, &reports, &checked](std::size_t s) {
                       if (!active_[s]) return;
                       const std::size_t phys = remap_[s];
                       reports[s] = codes_[phys].scrub(data_[phys]);
                       checked[s] = 1;
                       ShardCounters& c = counters_[phys];
                       ++c.scrub_passes;
                       c.corrected_data += reports[s].corrected_data;
                       c.corrected_check += reports[s].corrected_check;
                       c.uncorrectable += reports[s].uncorrectable;
                     });
  FleetScrubReport total;
  for (std::size_t s = 0; s < params_.shards; ++s) {  // shard order
    if (!checked[s]) continue;  // dead shards are excluded, not zero
    const ecc::ScrubReport& r = reports[s];
    ++total.shards_checked;
    total.blocks_checked += r.blocks_checked;
    total.clean += r.clean;
    total.corrected_data += r.corrected_data;
    total.corrected_check += r.corrected_check;
    total.uncorrectable += r.uncorrectable;
  }
  return total;
}

bool CrossbarFleet::all_consistent() const {
  std::vector<char> consistent(params_.shards, 0);
  util::parallel_for(util::Executor::shared(), params_.shards, params_.threads,
                     [this, &consistent](std::size_t s) {
                       consistent[s] =
                           !active_[s] ||
                           codes_[remap_[s]].consistent_with(data_[remap_[s]]);
                     });
  return std::all_of(consistent.begin(), consistent.end(),
                     [](char ok) { return ok != 0; });
}

std::vector<FleetAddress> CrossbarFleet::inject_random_errors(
    util::Rng& rng, std::size_t count) {
  const std::uint64_t population = params_.data_bits();
  if (count > population) {
    throw std::invalid_argument(
        "CrossbarFleet::inject_random_errors: more errors than data bits");
  }
  // Sampling stays on the caller's thread so the rng draw order is fixed.
  // sample_distinct works in std::size_t; fleets are addressed in 64-bit,
  // so reject configurations a 32-bit size_t could not address (we only
  // build 64-bit targets, so this is a static guarantee in practice).
  if (population > static_cast<std::uint64_t>(~std::size_t{0})) {
    throw std::invalid_argument(
        "CrossbarFleet::inject_random_errors: fleet exceeds size_t addressing");
  }
  std::vector<std::size_t> flat;
  fault::sample_distinct(rng, static_cast<std::size_t>(population), count, flat);
  std::vector<FleetAddress> flipped;
  flipped.reserve(count);
  for (const std::size_t bit : flat) {  // sorted ascending by contract
    const FleetAddress addr = translate(bit);
    // Dead shards absorb no faults: the sampled address is dropped (the
    // draw order is unchanged, so active shards still see the same flips).
    if (!active_[addr.shard]) continue;
    data_[remap_[addr.shard]].flip(addr.row, addr.col);
    ++counters_[remap_[addr.shard]].injected_faults;
    flipped.push_back(addr);
  }
  return flipped;
}

void CrossbarFleet::inject_data_error(std::size_t shard, std::size_t r,
                                      std::size_t c) {
  const std::size_t phys = backing(shard);
  if (r >= params_.n || c >= params_.n) {
    throw std::out_of_range("CrossbarFleet::inject_data_error: cell out of range");
  }
  data_[phys].flip(r, c);
  ++counters_[phys].injected_faults;
}

bool CrossbarFleet::shard_active(std::size_t shard) const {
  require_shard(shard);
  return active_[shard] != 0;
}

std::size_t CrossbarFleet::physical_shard(std::size_t shard) const {
  return backing(shard);
}

bool CrossbarFleet::quarantine_shard(std::size_t shard) {
  require_shard(shard);
  if (!active_[shard]) return false;  // already dead
  quarantined_.push_back(shard);
  if (spare_pool_.empty()) {
    active_[shard] = 0;
    return false;
  }
  const std::size_t spare = spare_pool_.back();
  spare_pool_.pop_back();
  ++spares_activated_;
  remap_[shard] = spare;
  // Fresh backing: zero image with consistent checks, so the remapped
  // shard re-enters bulk operations in a well-defined state (callers
  // reload real content next).
  data_[spare] = util::BitMatrix(params_.n, params_.n);
  codes_[spare].encode_all(data_[spare]);
  ++counters_[spare].encode_passes;
  return true;
}

std::vector<std::size_t> CrossbarFleet::quarantine_uncorrectable() {
  std::vector<std::uint64_t> uncorrectable(params_.shards, 0);
  util::parallel_for(util::Executor::shared(), params_.shards, params_.threads,
                     [this, &uncorrectable](std::size_t s) {
                       if (!active_[s]) return;
                       const std::size_t phys = remap_[s];
                       const ecc::ScrubReport r = codes_[phys].scrub(data_[phys]);
                       uncorrectable[s] = r.uncorrectable;
                       ShardCounters& c = counters_[phys];
                       ++c.scrub_passes;
                       c.corrected_data += r.corrected_data;
                       c.corrected_check += r.corrected_check;
                       c.uncorrectable += r.uncorrectable;
                     });
  std::vector<std::size_t> quarantined;
  for (std::size_t s = 0; s < params_.shards; ++s) {  // shard order
    if (uncorrectable[s] > 0) {
      quarantine_shard(s);
      quarantined.push_back(s);
    }
  }
  return quarantined;
}

FleetHealth CrossbarFleet::health() const {
  FleetHealth health;
  for (const char a : active_) health.active += a != 0 ? 1 : 0;
  health.quarantined = quarantined_.size();
  health.dead = params_.shards - health.active;
  health.spares_available = spare_pool_.size();
  health.spares_activated = spares_activated_;
  return health;
}

ShardCounters CrossbarFleet::total_counters() const {
  ShardCounters total;
  for (const ShardCounters& c : counters_) {
    total.encode_passes += c.encode_passes;
    total.scrub_passes += c.scrub_passes;
    total.corrected_data += c.corrected_data;
    total.corrected_check += c.corrected_check;
    total.uncorrectable += c.uncorrectable;
    total.injected_faults += c.injected_faults;
  }
  return total;
}

}  // namespace pimecc::arch
