#include "arch/shifter.hpp"

#include <stdexcept>

#include "util/modmath.hpp"

namespace pimecc::arch {

ShifterBank::ShifterBank(std::size_t n, std::size_t m) : n_(n), m_(m) {
  if (n == 0 || m == 0 || n % m != 0) {
    throw std::invalid_argument("ShifterBank: m must divide n (both positive)");
  }
}

std::vector<util::BitVector> ShifterBank::route(const util::BitVector& line,
                                                std::size_t shift,
                                                bool reversed) const {
  if (line.size() != n_) {
    throw std::invalid_argument("ShifterBank::route: line must have length n");
  }
  shift %= m_;
  std::vector<util::BitVector> out(m_, util::BitVector(groups()));
  for (std::size_t d = 0; d < m_; ++d) {
    const std::int64_t dir = reversed ? -static_cast<std::int64_t>(d)
                                      : static_cast<std::int64_t>(d);
    const std::size_t offset = static_cast<std::size_t>(util::floor_mod(
        dir - static_cast<std::int64_t>(shift), static_cast<std::int64_t>(m_)));
    for (std::size_t g = 0; g < groups(); ++g) {
      out[d].set(g, line.get(g * m_ + offset));
    }
  }
  return out;
}

util::BitVector ShifterBank::unroute(
    const std::vector<util::BitVector>& diagonal_vectors, std::size_t shift,
    bool reversed) const {
  if (diagonal_vectors.size() != m_) {
    throw std::invalid_argument("ShifterBank::unroute: need exactly m vectors");
  }
  shift %= m_;
  util::BitVector line(n_);
  for (std::size_t d = 0; d < m_; ++d) {
    if (diagonal_vectors[d].size() != groups()) {
      throw std::invalid_argument("ShifterBank::unroute: vector length mismatch");
    }
    const std::int64_t dir = reversed ? -static_cast<std::int64_t>(d)
                                      : static_cast<std::int64_t>(d);
    const std::size_t offset = static_cast<std::size_t>(util::floor_mod(
        dir - static_cast<std::int64_t>(shift), static_cast<std::int64_t>(m_)));
    for (std::size_t g = 0; g < groups(); ++g) {
      line.set(g * m_ + offset, diagonal_vectors[d].get(g));
    }
  }
  return line;
}

}  // namespace pimecc::arch
