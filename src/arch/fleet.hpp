// pimecc -- arch/fleet.hpp
//
// Sharded multi-crossbar fleet: the scale-out layer over the single-unit
// engines.  Where MemorySystem models one bank of a handful of PimMachine
// units with full cycle-accurate protocol state, CrossbarFleet owns
// thousands of crossbar *shards* in structure-of-arrays form -- parallel
// per-shard arrays of data images, ArrayCode check images, and counters,
// indexed by shard -- so bulk operations stream each shard's contiguous
// image through the PR 6 SIMD kernel tables (ArrayCode's band walks) and
// fan the shards out over the persistent work-stealing executor
// (util/executor.hpp) with dynamic shard tickets.
//
// Determinism contract (the fleet inherits the PR 5 discipline):
//   - load_random draws ONE base seed from the caller and fills shard s
//     from substream s, so the images are bit-identical at any worker
//     count and the caller's generator always advances by one draw;
//   - every bulk operation writes only shard-indexed slots (reports,
//     counters, consistency bits) and merges them in shard order after the
//     join, so which lane ran which shard is unobservable;
//   - fleet-wide fault injection samples on the caller's thread (draw
//     order fixed) and applies flips shard by shard.
// tests/test_fleet.cpp pins every entry point against a serial loop over
// independent single-crossbar engines.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/array_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace pimecc::arch {

/// Shape of a fleet: `shards` independent n x n crossbars with block size m,
/// plus `spares` standby crossbars that replace quarantined shards.
struct FleetParams {
  std::size_t n = 120;       ///< per-shard crossbar dimension
  std::size_t m = 15;        ///< ECC block size (odd, divides n)
  std::size_t shards = 256;  ///< number of addressable crossbar shards
  std::size_t spares = 0;    ///< standby shards for quarantine remapping
  std::size_t threads = 0;   ///< executor lanes for bulk ops; 0 = full width

  /// Throws std::invalid_argument on an empty fleet or invalid (n, m).
  void validate() const;
  [[nodiscard]] std::uint64_t data_bits() const noexcept {
    return static_cast<std::uint64_t>(shards) * n * n;
  }
};

/// Location of one data bit in the fleet.
struct FleetAddress {
  std::size_t shard = 0;
  std::size_t row = 0;
  std::size_t col = 0;
  bool operator==(const FleetAddress&) const noexcept = default;
};

/// Per-shard bulk-operation accounting.  All fields are integer sums, so
/// fleet totals merge commutatively in shard order.
struct ShardCounters {
  std::uint64_t encode_passes = 0;
  std::uint64_t scrub_passes = 0;
  std::uint64_t corrected_data = 0;
  std::uint64_t corrected_check = 0;
  std::uint64_t uncorrectable = 0;
  std::uint64_t injected_faults = 0;
  bool operator==(const ShardCounters&) const noexcept = default;
};

/// Aggregate of one fleet-wide scrub.
struct FleetScrubReport {
  std::size_t shards_checked = 0;
  std::uint64_t blocks_checked = 0;
  std::uint64_t clean = 0;
  std::uint64_t corrected_data = 0;
  std::uint64_t corrected_check = 0;
  std::uint64_t uncorrectable = 0;
  bool operator==(const FleetScrubReport&) const noexcept = default;
};

/// Health summary of a fleet in (possibly) degraded operation.
struct FleetHealth {
  std::size_t active = 0;            ///< logical shards still serving
  std::size_t quarantined = 0;       ///< logical shards ever quarantined
  std::size_t dead = 0;              ///< quarantined without a spare
  std::size_t spares_available = 0;  ///< standby shards not yet activated
  std::size_t spares_activated = 0;
  bool operator==(const FleetHealth&) const noexcept = default;
};

/// A sharded bank of ECC-protected crossbar images.
///
/// Degraded mode: logical shard s is backed by a physical image slot (the
/// identity mapping until a quarantine).  quarantine_shard() retires the
/// current backing; if a spare is available the logical shard is remapped
/// onto it (zero-filled, checks encoded) and stays active, otherwise the
/// shard goes dead and every bulk operation skips it -- campaigns complete
/// over the surviving shards with exact bookkeeping instead of aggregating
/// over poisoned state (reliability/fleet_reliability.hpp's
/// run_fleet_campaign drives this end to end).
class CrossbarFleet {
 public:
  explicit CrossbarFleet(const FleetParams& params);

  [[nodiscard]] const FleetParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return params_.shards;
  }
  [[nodiscard]] std::size_t n() const noexcept { return params_.n; }
  [[nodiscard]] std::size_t m() const noexcept { return params_.m; }

  // --- per-shard access ----------------------------------------------------
  [[nodiscard]] const util::BitMatrix& data(std::size_t shard) const;
  [[nodiscard]] const ecc::ArrayCode& code(std::size_t shard) const;
  [[nodiscard]] const ShardCounters& counters(std::size_t shard) const;

  /// Maps a linear data-bit index (shard-major, then row-major cells) to
  /// its location; throws std::out_of_range past data_bits().
  [[nodiscard]] FleetAddress translate(std::uint64_t bit_index) const;

  // --- sharded bulk operations (executor-parallel, shard-deterministic) ----
  /// Draws one base seed from `rng` and fills shard s with pseudo-random
  /// data from substream s (fill_random word discipline), then encodes all
  /// check bits -- bit-identical images at any worker count.
  void load_random(util::Rng& rng);
  /// Loads the same n x n image into every shard and encodes (the
  /// reliability campaigns' shared-golden discipline).
  void load_broadcast(const util::BitMatrix& image);
  /// Recomputes every shard's check bits from its current data.
  void encode_all();
  /// Checks and repairs every block of every shard; per-shard reports are
  /// merged in shard order, so the aggregate is worker-count invariant.
  FleetScrubReport scrub_all();
  /// True iff every shard's check bits match its data exactly.
  [[nodiscard]] bool all_consistent() const;

  // --- fault injection -----------------------------------------------------
  /// Flips `count` distinct uniformly-chosen data bits across the fleet
  /// (sampled on the caller's thread; deterministic in `rng`).  Returns
  /// the flipped locations sorted by linear index.
  std::vector<FleetAddress> inject_random_errors(util::Rng& rng,
                                                 std::size_t count);
  /// Flips one data bit of one shard.
  void inject_data_error(std::size_t shard, std::size_t r, std::size_t c);

  // --- degraded mode -------------------------------------------------------
  /// True iff logical shard `shard` still has a backing image (never
  /// quarantined, or remapped onto a spare).
  [[nodiscard]] bool shard_active(std::size_t shard) const;
  /// Current physical slot backing logical shard `shard`; throws
  /// std::runtime_error for a dead shard.
  [[nodiscard]] std::size_t physical_shard(std::size_t shard) const;
  /// Retires logical shard `shard`'s backing.  Returns true when a spare
  /// was activated (the shard stays active on a fresh zero image with
  /// consistent checks); false when no spare remained and the shard is now
  /// dead.  Idempotent on dead shards (returns false).
  bool quarantine_shard(std::size_t shard);
  /// Scrubs every active shard and quarantines those whose scrub reports
  /// uncorrectable blocks.  Returns the quarantined logical ids in shard
  /// order (empty when the fleet is healthy).
  std::vector<std::size_t> quarantine_uncorrectable();
  [[nodiscard]] FleetHealth health() const;

  // --- accounting ----------------------------------------------------------
  /// Commutative shard-order merge of every physical slot's counters
  /// (quarantined slots keep their history).
  [[nodiscard]] ShardCounters total_counters() const;

 private:
  void require_shard(std::size_t shard) const;
  [[nodiscard]] std::size_t backing(std::size_t shard) const;  // checked remap

  FleetParams params_;
  // Structure-of-arrays over PHYSICAL slots (shards + spares): parallel
  // arrays indexed by physical id; logical shard s reaches its image via
  // remap_[s].
  std::vector<util::BitMatrix> data_;
  std::vector<ecc::ArrayCode> codes_;
  std::vector<ShardCounters> counters_;
  std::vector<std::size_t> remap_;        ///< logical -> physical
  std::vector<char> active_;              ///< logical shard has a backing
  std::vector<std::size_t> spare_pool_;   ///< unused physical spare slots
  std::vector<std::size_t> quarantined_;  ///< logical ids, quarantine order
  std::size_t spares_activated_ = 0;
};

}  // namespace pimecc::arch
