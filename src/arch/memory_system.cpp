#include "arch/memory_system.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "util/executor.hpp"

namespace pimecc::arch {

void MemorySystemParams::validate() const {
  unit.validate();
  if (unit_rows == 0 || unit_cols == 0) {
    throw std::invalid_argument("MemorySystemParams: grid must be non-empty");
  }
}

MemorySystem::MemorySystem(const MemorySystemParams& params) : params_(params) {
  params_.validate();
  units_.reserve(params_.unit_count());
  for (std::size_t i = 0; i < params_.unit_count(); ++i) {
    units_.emplace_back(params_.unit);
  }
}

PimMachine& MemorySystem::unit(std::size_t unit_row, std::size_t unit_col) {
  if (unit_row >= params_.unit_rows || unit_col >= params_.unit_cols) {
    throw std::out_of_range("MemorySystem::unit: index out of range");
  }
  return units_[unit_row * params_.unit_cols + unit_col];
}

const PimMachine& MemorySystem::unit(std::size_t unit_row,
                                     std::size_t unit_col) const {
  return const_cast<MemorySystem*>(this)->unit(unit_row, unit_col);
}

GlobalAddress MemorySystem::translate(std::uint64_t bit_index) const {
  if (bit_index >= params_.data_bits()) {
    throw std::out_of_range("MemorySystem::translate: address out of range");
  }
  const std::uint64_t cells_per_unit =
      static_cast<std::uint64_t>(params_.unit.n) * params_.unit.n;
  const std::uint64_t unit_index = bit_index / cells_per_unit;
  const std::uint64_t cell = bit_index % cells_per_unit;
  GlobalAddress addr;
  addr.unit_row = static_cast<std::size_t>(unit_index / params_.unit_cols);
  addr.unit_col = static_cast<std::size_t>(unit_index % params_.unit_cols);
  addr.row = static_cast<std::size_t>(cell / params_.unit.n);
  addr.col = static_cast<std::size_t>(cell % params_.unit.n);
  return addr;
}

void MemorySystem::load_random(util::Rng& rng) {
  // One caller draw, unit u from substream u (the fleet/reliability seed
  // discipline): images are bit-identical at any worker count and the
  // caller's generator advances by exactly one draw regardless of grid
  // shape.
  const std::uint64_t base_seed = rng.next();
  util::parallel_for(util::Executor::shared(), units_.size(), 0,
                     [this, base_seed](std::size_t u) {
                       util::Rng unit_rng = util::Rng::for_stream(base_seed, u);
                       units_[u].load(util::random_bit_matrix(
                           params_.unit.n, params_.unit.n, unit_rng));
                     });
}

std::vector<GlobalAddress> MemorySystem::inject_random_errors(util::Rng& rng,
                                                              std::size_t count) {
  if (count > params_.data_bits()) {
    throw std::invalid_argument("MemorySystem: more errors than data bits");
  }
  std::unordered_set<std::uint64_t> chosen;
  std::vector<GlobalAddress> flipped;
  while (flipped.size() < count) {
    const std::uint64_t bit = rng.uniform_below(params_.data_bits());
    if (!chosen.insert(bit).second) continue;
    const GlobalAddress addr = translate(bit);
    unit(addr.unit_row, addr.unit_col).inject_data_error(addr.row, addr.col);
    flipped.push_back(addr);
  }
  return flipped;
}

SystemScrubReport MemorySystem::scrub_all() {
  // Per-unit report slots, merged in unit order after the join, so the
  // aggregate (and each unit's cycle accounting) is worker-count invariant.
  std::vector<CheckReport> reports(units_.size());
  util::parallel_for(
      util::Executor::shared(), units_.size(), 0,
      [this, &reports](std::size_t u) { reports[u] = units_[u].scrub(); });
  SystemScrubReport total;
  for (const CheckReport& r : reports) {
    ++total.units_checked;
    total.blocks_checked += r.blocks_checked;
    total.corrected_data += r.corrected_data;
    total.corrected_check += r.corrected_check;
    total.uncorrectable += r.uncorrectable;
  }
  return total;
}

CheckReport MemorySystem::scrub_tick() {
  const std::size_t bands = params_.unit.blocks_per_side();
  const std::size_t unit_index = scrub_cursor_ / bands;
  const std::size_t band = scrub_cursor_ % bands;
  scrub_cursor_ = (scrub_cursor_ + 1) % ticks_per_pass();
  return units_[unit_index].check_block_row(band * params_.unit.m);
}

DeviceCounts MemorySystem::aggregate_device_counts() const {
  DeviceCounts counts = count_devices(params_.unit);
  const std::uint64_t units = params_.unit_count();
  for (auto& row : counts.rows) {
    row.memristors *= units;
    row.transistors *= units;
  }
  counts.total_memristors *= units;
  counts.total_transistors *= units;
  return counts;
}

bool MemorySystem::all_consistent() const {
  std::vector<char> consistent(units_.size(), 0);
  util::parallel_for(util::Executor::shared(), units_.size(), 0,
                     [this, &consistent](std::size_t u) {
                       consistent[u] = units_[u].ecc_consistent() ? 1 : 0;
                     });
  return std::all_of(consistent.begin(), consistent.end(),
                     [](char ok) { return ok != 0; });
}

}  // namespace pimecc::arch
