// pimecc -- arch/scheduler.hpp
//
// Resource-tracked greedy scheduler for the ECC protocol (paper Section
// IV + V-B).  This mirrors the paper's adapted-SIMPLER pass: operations are
// taken in program order and placed at the earliest cycle where the
// resources they need are available, inserting stall cycles otherwise.
//
// Modeled unit-capacity resources:
//   MEM   -- the data crossbar: one gate / init / transfer per cycle.
//   PC_j  -- processing crossbars: one in-flight check-bit update occupies
//            a PC from its first operand transfer until write-back.  A
//            critical update services both diagonal axes: each axis is one
//            n-lane XOR3 pass, so it consumes two PC passes (in parallel on
//            two PCs, or serialized on one).
//   CBX   -- the check-bit crossbar port through the connection unit: one
//            read or write-back per cycle.
//
// Critical-operation timeline (ArchParams defaults, one PC pass):
//   t0   : MAGIC NOT old data MEM -> PC (MEM, PC)
//   t0+1 : old check bits CBX -> PC (CBX, PC); MEM free for the gate
//   t1   : the critical gate itself in MEM (>= t0+1)
//   t2   : MAGIC NOT new data MEM -> PC (MEM, PC)  (>= t1+1)
//   t2+1 .. t2+8 : XOR3 microprogram inside the PC
//   t2+9 : write-back PC -> CBX (CBX)
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "arch/params.hpp"

namespace pimecc::arch {

/// Unit-capacity resource with monotonic greedy reservation (suits the MEM,
/// whose operations arrive in program order).
class ResourceTimeline {
 public:
  /// Reserves one cycle at the earliest time >= `earliest`; returns it.
  std::uint64_t reserve(std::uint64_t earliest) noexcept {
    const std::uint64_t t = earliest > next_free_ ? earliest : next_free_;
    next_free_ = t + 1;
    return t;
  }
  /// Reserves `span` consecutive cycles starting no earlier than `earliest`;
  /// returns the first cycle.
  std::uint64_t reserve_span(std::uint64_t earliest, std::uint64_t span) noexcept {
    const std::uint64_t t = earliest > next_free_ ? earliest : next_free_;
    next_free_ = t + span;
    return t;
  }
  [[nodiscard]] std::uint64_t next_free() const noexcept { return next_free_; }

 private:
  std::uint64_t next_free_ = 0;
};

/// Unit-capacity resource with out-of-order single-cycle reservations
/// (suits the connection-unit port: one update's early check-bit *read* must
/// be able to slot in between other updates' late *write-backs*).
///
/// Reservations are skip-chained: busy_[t] = u records that every cycle in
/// [t, u) is taken, and reserve() path-compresses the chain it walks, so a
/// long run of back-to-back reservations (the batched check-memory traffic
/// of a whole program) costs amortized O(1) lookups instead of one probe
/// per occupied cycle.  Results are identical to linear probing.
class CalendarResource {
 public:
  /// Reserves the first free cycle at or after `earliest`.
  std::uint64_t reserve(std::uint64_t earliest);

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> busy_;
  std::vector<std::uint64_t> path_;  // scratch: chain visited this reserve
};

/// Identifies one check bit for hazard tracking: (block, axis, diagonal)
/// packed by the caller into a single integer key.
using CheckCellKey = std::uint64_t;

/// One reserved cycle (or span) on one unit -- the scheduler's trace
/// record, consumed by `pimecc_map --timeline` and the scheduler tests.
struct ScheduledEvent {
  std::uint64_t cycle = 0;  ///< start cycle
  std::uint64_t span = 1;   ///< consecutive cycles occupied
  enum class Unit : unsigned char { kMem, kPc, kCbx } unit = Unit::kMem;
  const char* label = "";

  [[nodiscard]] const char* unit_name() const noexcept {
    switch (unit) {
      case Unit::kMem: return "MEM";
      case Unit::kPc: return "PC";
      case Unit::kCbx: return "CBX";
    }
    return "?";
  }
};

/// Aggregate scheduling outcome.
struct ScheduleStats {
  std::uint64_t makespan = 0;       ///< completion of the last event anywhere
  std::uint64_t mem_cycles = 0;     ///< cycles in which MEM performed an op
  std::uint64_t mem_last_end = 0;   ///< first cycle after the last MEM op
  std::uint64_t stall_cycles = 0;   ///< MEM idle gaps forced by CMEM resources
  std::uint64_t critical_ops = 0;
  std::uint64_t cancel_ops = 0;
  std::uint64_t plain_ops = 0;
  std::uint64_t input_check_cycles = 0;  ///< MEM cycles spent copying for checks
};

/// Greedy protocol scheduler.  Feed operations in program order.
class ProtocolScheduler {
 public:
  explicit ProtocolScheduler(const ArchParams& params);

  /// Schedules the before-execution ECC check of the function-input
  /// block-row: m MEM copy cycles, then the CMEM XOR3 fold tree, syndrome
  /// compare and flag evaluation off the MEM's critical path.  Critical
  /// operations scheduled later will not commit before the check completes
  /// when params.wait_check_before_critical is set.
  void schedule_input_check();

  /// A baseline (non-critical) MEM op: gate or batched init, one cycle.
  std::uint64_t schedule_plain_op();

  /// A critical op: a gate whose written cell is ECC-covered.  `key` names
  /// the check bits it updates (hazard tracking).  Returns the gate cycle.
  std::uint64_t schedule_critical_op(CheckCellKey key);

  /// A batch of cancel-only updates: ECC-covered cells about to be recycled
  /// as scratch in one init cycle, whose old contributions must be removed
  /// first.  Costs one old-data transfer (MEM cycle) per cell; the parity
  /// deltas then fold through a single XOR3 tree in one PC pass pair (the
  /// same dataflow as the ECC check), so PC occupancy grows only
  /// logarithmically with the batch.  Returns the first transfer cycle.
  std::uint64_t schedule_cancel_batch(const std::vector<CheckCellKey>& keys);

  /// Finalizes and returns the statistics.
  [[nodiscard]] ScheduleStats finish() const;

  /// Cycle at which the input check completes (0 if none scheduled).
  [[nodiscard]] std::uint64_t check_done() const noexcept { return check_done_; }

  /// Attaches a trace sink; every subsequent reservation is recorded.
  /// Pass nullptr to detach.  The sink must outlive the scheduler's use.
  void set_event_sink(std::vector<ScheduledEvent>* sink) noexcept {
    events_ = sink;
  }

 private:
  void record(std::uint64_t cycle, std::uint64_t span, ScheduledEvent::Unit unit,
              const char* label) {
    if (events_ != nullptr) events_->push_back({cycle, span, unit, label});
  }
  /// Reserves a full PC pass window starting at or after `earliest` on the
  /// least-loaded PC; returns the window start.
  std::uint64_t reserve_pc_pass(std::uint64_t earliest, std::uint64_t span,
                                const char* label);
  /// Earliest cycle at which a *pair* of PCs is free to receive operands
  /// (the two diagonal-axis passes run in parallel on the two soonest-free
  /// PCs; with one PC they serialize on it).  Allocation-free.
  [[nodiscard]] std::uint64_t pc_pair_ready() const noexcept;
  std::uint64_t mem_reserve_tracking_stalls(std::uint64_t earliest,
                                            const char* label);
  [[nodiscard]] std::uint64_t hazard_ready(CheckCellKey key) const;
  void note_hazard(CheckCellKey key, std::uint64_t ready);
  void note_event_end(std::uint64_t end);

  ArchParams params_;
  ResourceTimeline mem_;
  CalendarResource cbx_;
  std::vector<std::uint64_t> pc_free_;
  std::unordered_map<CheckCellKey, std::uint64_t> hazards_;
  std::uint64_t check_done_ = 0;
  std::uint64_t last_event_end_ = 0;
  ScheduleStats stats_;
  std::vector<ScheduledEvent>* events_ = nullptr;
};

/// Number of XOR3 tree levels needed to fold `count` vectors into one.
[[nodiscard]] std::uint64_t xor3_fold_levels(std::uint64_t count) noexcept;

}  // namespace pimecc::arch
