// pimecc -- arch/processing_xbar.hpp
//
// Processing crossbar (PC): the pipelined XOR3 engine of the CMEM (paper
// Section IV, Figure 4).
//
// Each PC lane owns 11 memristors (the Table II "2 x 11 x k x n" term):
// three operand cells and eight intermediate/result cells.  XOR3 is
// computed as XNOR(XNOR(a,b),c) where each 2-input XNOR takes exactly four
// MAGIC NORs -- eight NOR cycles total, matching the paper's "XOR3 is
// performed with 8 MAGIC NOR operations".
//
// Operands arrive by inter-crossbar MAGIC NOT, which *inverts*: the PC
// holds a', b', c'.  XOR3 of three inverted operands is the inverse of
// XOR3(a,b,c); the write-back MAGIC NOT inverts once more, so the check-bit
// crossbar receives the true value  old_check (+) old_data (+) new_data.
#pragma once

#include <cstddef>

#include "util/bitvector.hpp"
#include "xbar/crossbar.hpp"

namespace pimecc::arch {

/// One processing crossbar with `lanes` parallel XOR3 lanes.
class ProcessingXbar {
 public:
  /// Column roles inside a lane.
  enum Column : std::size_t {
    kA = 0, kB = 1, kC = 2,
    kN1 = 3, kN2 = 4, kN3 = 5, kT = 6,       // first XNOR: t = XNOR(a,b)
    kM1 = 7, kM2 = 8, kM3 = 9, kResult = 10,  // second XNOR: res = XNOR(t,c)
    kColumns = 11,
  };

  explicit ProcessingXbar(std::size_t lanes);

  [[nodiscard]] std::size_t lanes() const noexcept { return xbar_.rows(); }

  /// Initializes all working cells to LRS (one batched MAGIC init cycle).
  void init_working_cells();

  /// Receives an operand column by inter-crossbar MAGIC NOT: the stored
  /// bits are the *inverse* of `true_values`.  One transfer cycle.
  /// `slot` must be kA, kB or kC.
  void load_operand(Column slot, const util::BitVector& true_values);

  /// Runs the 8-NOR XOR3 microprogram (8 cycles on this crossbar).
  /// Requires init_working_cells() then all three operands loaded.
  void compute();

  /// The raw (inverted) result column as stored in the crossbar.
  [[nodiscard]] util::BitVector result_raw() const;

  /// The true XOR3 value as it arrives at the check-bit crossbar after the
  /// inverting write-back transfer.
  [[nodiscard]] util::BitVector writeback_values() const;

  /// Cycle count accumulated on this crossbar.
  [[nodiscard]] std::uint64_t cycles() const noexcept { return xbar_.cycles(); }
  [[nodiscard]] std::uint64_t nor_ops() const noexcept { return xbar_.nor_ops(); }

 private:
  xbar::Crossbar xbar_;
};

/// Pure-function reference: XOR3 via the same dataflow, for tests.
[[nodiscard]] util::BitVector xor3_reference(const util::BitVector& a,
                                             const util::BitVector& b,
                                             const util::BitVector& c);

}  // namespace pimecc::arch
