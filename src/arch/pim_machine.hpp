// pimecc -- arch/pim_machine.hpp
//
// The top-level public API: one MEM crossbar with the paper's full ECC
// extension attached (Figure 3) -- check-bit storage, processing crossbars,
// checking crossbar, barrel shifters and controllers -- operated
// functionally and bit-accurately.
//
// Every stateful-logic operation issued through this facade runs the
// Section IV critical-operation protocol:
//   1. cancel the old data's effect on the check bits,
//   2. perform the MAGIC operation in the MEM,
//   3. add the new data's effect on the check bits,
// and soft errors can be injected at any point; checks before use and
// periodic scrubs then detect/correct them exactly as the architecture
// would.
//
// This is the *word-parallel* production machine: check bits live in an
// ecc::ArrayCode (one diagonal-parity family per 64-bit word), initial
// encodes and verifications ride the encode_all/scrub/consistent_with band
// walks, and protocol steps 1+3 are computed *differentially* from the
// written line via the diagword kernel -- one rotate+XOR per affected
// family, never a re-encode (ArrayCode::apply_line_delta).  Cycle
// accounting is unchanged: the protocol's analytic costs are identical to
// routing the lines through the shifter bank into genuine XOR3
// microprograms.  The original bit-serial composition is retained verbatim
// as ReferencePimMachine (reference_pim_machine.hpp) and must match this
// machine exactly in contents, check state, cycle counters, and correction
// counts on any program -- pinned by tests/test_arch_engine.cpp.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/check_memory.hpp"  // Axis
#include "arch/params.hpp"
#include "core/array_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/bitvector.hpp"
#include "xbar/crossbar.hpp"

namespace pimecc::arch {

/// Outcome of one ECC check over a band of blocks.
struct CheckReport {
  std::size_t blocks_checked = 0;
  std::size_t corrected_data = 0;
  std::size_t corrected_check = 0;
  std::size_t uncorrectable = 0;

  [[nodiscard]] bool all_clean() const noexcept {
    return corrected_data + corrected_check + uncorrectable == 0;
  }
  bool operator==(const CheckReport&) const noexcept = default;
};

/// Cycle accounting split by unit, in the spirit of the paper's latency
/// model: MEM cycles serialize with computation; CMEM cycles overlap except
/// where the protocol forces ordering.
struct MachineCounters {
  std::uint64_t mem_cycles = 0;
  std::uint64_t cmem_cycles = 0;
  std::uint64_t critical_ops = 0;
  std::uint64_t checks = 0;
  std::uint64_t scrubs = 0;
  bool operator==(const MachineCounters&) const noexcept = default;
};

/// MEM + CMEM processing-in-memory unit with diagonal-parity ECC.
class PimMachine {
 public:
  explicit PimMachine(const ArchParams& params);

  [[nodiscard]] const ArchParams& params() const noexcept { return params_; }
  [[nodiscard]] std::size_t n() const noexcept { return params_.n; }
  [[nodiscard]] std::size_t m() const noexcept { return params_.m; }

  // --- data movement -------------------------------------------------------
  /// Loads an n x n image into the MEM and (re)encodes all check bits.
  void load(const util::BitMatrix& image);
  /// Reads the MEM contents (no ECC check; use check/scrub for that).
  [[nodiscard]] const util::BitMatrix& data() const noexcept {
    return mem_.contents();
  }
  /// Controller write of one full row with continuous check-bit update.
  void write_row_protected(std::size_t r, const util::BitVector& values);

  // --- protected stateful logic -------------------------------------------
  /// Row-parallel MAGIC NOR with the critical-operation protocol:
  /// out(r, out_col) = NOR_i in(r, in_cols[i]) for each selected row.
  /// Output cells must have been initialized (magic_init_protected).
  /// Empty `rows` selects all rows.
  void magic_nor_rows_protected(std::span<const std::size_t> in_cols,
                                std::size_t out_col,
                                std::span<const std::size_t> rows = {});
  /// Column-parallel variant: out(out_row, c) = NOR_i in(in_rows[i], c).
  void magic_nor_cols_protected(std::span<const std::size_t> in_rows,
                                std::size_t out_row,
                                std::span<const std::size_t> cols = {});
  /// Initialization (to LRS) of whole lines, ECC-maintained: for
  /// row-orientation, initializes the given columns across all rows.
  /// Lines must be distinct (a duplicate would corrupt the check update).
  void magic_init_rows_protected(std::span<const std::size_t> cols);
  void magic_init_cols_protected(std::span<const std::size_t> rows);

  // --- checking ------------------------------------------------------------
  /// The paper's before-use check: verifies (and repairs) all blocks of the
  /// block-row containing `row`.
  CheckReport check_block_row(std::size_t row);
  /// Verifies all blocks of the block-column containing `col`.
  CheckReport check_block_col(std::size_t col);
  /// Periodic full-memory check.
  CheckReport scrub();

  /// True iff the stored check bits are exactly consistent with the MEM
  /// data (golden-model invariant used heavily in tests).
  [[nodiscard]] bool ecc_consistent() const;

  // --- fault injection hooks ------------------------------------------------
  /// Flips one data bit (simulated soft error).
  void inject_data_error(std::size_t r, std::size_t c);
  /// Flips one check bit.
  void inject_check_error(Axis axis, std::size_t diagonal, ecc::BlockIndex block);

  [[nodiscard]] const MachineCounters& counters() const noexcept { return counters_; }
  /// The check-bit state (functional view of the CMEM contents).
  [[nodiscard]] const ecc::ArrayCode& check_code() const noexcept { return code_; }

  // --- workload observability -----------------------------------------------
  /// Per-row wordline-activation accounting of the MEM crossbar (see
  /// xbar::Crossbar::row_activations): the workload signal consumed by the
  /// scenario-diversity fault models (fault/disturbance.hpp) and the
  /// activation-triggered scrub policies (reliability/scrub_policy.hpp).
  /// Campaign-local observability -- not checkpointed; restore() leaves
  /// the history untouched and reset starts it fresh.
  [[nodiscard]] std::uint64_t mem_row_activations(std::size_t r) const {
    return mem_.row_activations(r);
  }
  [[nodiscard]] std::vector<std::uint64_t> mem_row_activation_snapshot() const {
    return mem_.row_activation_snapshot();
  }
  void reset_mem_row_activations() noexcept { mem_.reset_row_activations(); }

  // --- checkpointing (arch/checkpoint.hpp) ---------------------------------
  /// MEM crossbar counter snapshot: the machine's mem_cycles accounting is
  /// derived from the crossbar's own counter, so checkpoints must carry it.
  [[nodiscard]] xbar::Crossbar::Counters mem_counters() const noexcept {
    return mem_.counters();
  }
  /// Replaces the complete machine state with a previously captured
  /// snapshot: MEM image, check bits (taken verbatim -- they may be
  /// deliberately inconsistent with the data, e.g. under injected faults),
  /// and both counter sets.  Validates every shape against this machine's
  /// geometry *before* mutating anything, so a throwing restore leaves the
  /// machine untouched.
  void restore(const util::BitMatrix& data, const ecc::ArrayCode& code,
               const MachineCounters& counters,
               const xbar::Crossbar::Counters& mem_counters);

 private:
  /// Runs protocol steps 1+3 for a line write, differentially: `delta` is
  /// old XOR new of the written line.  `along_rows` true means the written
  /// line is a column (row-parallel op).
  void update_check_bits_for_line(bool along_rows, std::size_t line,
                                  const util::BitVector& delta);
  CheckReport check_block_band(bool row_band, std::size_t band);

  ArchParams params_;
  xbar::Crossbar mem_;
  ecc::ArrayCode code_;
  MachineCounters counters_;

  // Scratch buffers reused across operations so the protected hot path is
  // allocation-free in steady state.
  util::BitVector old_line_;  ///< line snapshot, then delta in place
  util::BitVector new_line_;
  std::vector<util::BitVector> init_snapshots_;
};

}  // namespace pimecc::arch
