// pimecc -- arch/params.hpp
//
// Architecture parameters of the proposed design (paper Section IV and the
// Section V case study: n = 1020, m = 15, k = 3).
#pragma once

#include <cstddef>

namespace pimecc::arch {

/// Policy for read-after-write hazards on a check bit that still has an
/// update in flight inside a processing crossbar (paper footnote 3).
enum class HazardPolicy : unsigned char {
  kForward,  ///< processing-crossbar forwarding; no extra cycles
  kStall,    ///< wait until the in-flight write-back completes
};

/// Static configuration of one MEM + CMEM unit.
struct ArchParams {
  std::size_t n = 1020;        ///< MEM crossbar is n x n
  std::size_t m = 15;          ///< block size (odd, divides n)
  std::size_t num_pcs = 3;     ///< processing crossbars, k (paper: <= 8)
  std::size_t xor3_cycles = 8; ///< MAGIC NORs per XOR3 (= 2 x 4-NOR XNOR)
  std::size_t transfer_cycles = 1;   ///< one MEM<->CMEM MAGIC NOT move
  std::size_t writeback_cycles = 1;  ///< PC -> check-bit crossbar move
  /// Require the input ECC check to finish before the first critical
  /// operation commits an output (conservative; see DESIGN.md).
  bool wait_check_before_critical = true;
  HazardPolicy hazard = HazardPolicy::kForward;

  /// Throws std::invalid_argument on inconsistent parameters.
  void validate() const;

  [[nodiscard]] std::size_t blocks_per_side() const noexcept { return n / m; }
  /// Check bits per block (2m) and per crossbar (2m * (n/m)^2).
  [[nodiscard]] std::size_t check_bits_total() const noexcept {
    return 2 * m * blocks_per_side() * blocks_per_side();
  }
  /// Cycles one processing crossbar is occupied by a full update
  /// (receive old + receive check + receive new + XOR3 + write-back).
  [[nodiscard]] std::size_t pc_occupancy_cycles() const noexcept {
    return 3 * transfer_cycles + xor3_cycles + writeback_cycles;
  }
};

}  // namespace pimecc::arch
