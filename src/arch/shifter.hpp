// pimecc -- arch/shifter.hpp
//
// Functional model of the barrel-shifter bank between MEM and CMEM (paper
// Section IV-B, Figure 5).
//
// Physical diagonal wires are infeasible (memristors have two terminals),
// so the design reroutes a whole wordline/bitline through per-block
// m-shifters: the n incoming lines are split into n/m groups of m (one per
// block spanned by the line) and each group is rotated by the line's index
// mod m.  After rotation, output position d of every group carries the bit
// lying on diagonal d of its block -- the Figure 2(c) shift pattern.
//
// The shifters are pass transistors only: they reroute, they do not
// compute, so a MEM->CMEM transfer through them costs the same single
// MAGIC-NOT cycle as an in-array copy.
#pragma once

#include <cstddef>
#include <vector>

#include "util/bitvector.hpp"

namespace pimecc::arch {

/// Bank of n/m m-shifters for one transfer direction.
class ShifterBank {
 public:
  /// Throws std::invalid_argument unless m divides n (both positive).
  ShifterBank(std::size_t n, std::size_t m);

  [[nodiscard]] std::size_t n() const noexcept { return n_; }
  [[nodiscard]] std::size_t m() const noexcept { return m_; }
  [[nodiscard]] std::size_t groups() const noexcept { return n_ / m_; }

  /// Routes one full line (length n) with rotation `shift` (the line's
  /// index mod m, per Figure 2(c)).
  ///
  /// Returns m vectors of length n/m; vector d holds, for every block along
  /// the line, the bit that lies on leading diagonal d (for a wordline with
  /// shift = row mod m) or the equivalent counter alignment.
  ///
  /// Concretely: out[d][g] = line[g*m + ((d - shift) mod m)], or with
  /// `reversed` set, out[d][g] = line[g*m + ((-d - shift) mod m)].  The
  /// reversed wiring serves the counter-diagonal family, whose indices run
  /// in the opposite direction along a wordline (Figure 2(c) mirrored).
  [[nodiscard]] std::vector<util::BitVector> route(const util::BitVector& line,
                                                   std::size_t shift,
                                                   bool reversed = false) const;

  /// Inverse of route(): reassembles the line from per-diagonal vectors.
  [[nodiscard]] util::BitVector unroute(
      const std::vector<util::BitVector>& diagonal_vectors, std::size_t shift,
      bool reversed = false) const;

  /// Transistor count of the bank (Table II: one direction is 2*n*m of the
  /// total 4*n*m for both wordline and bitline banks).
  [[nodiscard]] std::size_t transistor_count() const noexcept { return 2 * n_ * m_; }

 private:
  std::size_t n_;
  std::size_t m_;
};

}  // namespace pimecc::arch
