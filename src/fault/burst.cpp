#include "fault/burst.hpp"

#include <cmath>
#include <stdexcept>

namespace pimecc::fault {

std::vector<DataFlip> burst_cells(std::size_t rows, std::size_t cols,
                                  std::size_t r, std::size_t c,
                                  std::size_t length, BurstShape shape) {
  if (length == 0) {
    throw std::invalid_argument("burst_cells: length must be positive");
  }
  if (r >= rows || c >= cols) {
    throw std::out_of_range("burst_cells: anchor out of range");
  }
  std::vector<DataFlip> cells;
  switch (shape) {
    case BurstShape::kHorizontal:
      for (std::size_t i = 0; i < length && c + i < cols; ++i) {
        cells.push_back({r, c + i});
      }
      break;
    case BurstShape::kVertical:
      for (std::size_t i = 0; i < length && r + i < rows; ++i) {
        cells.push_back({r + i, c});
      }
      break;
    case BurstShape::kSquare: {
      const auto side = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(length))));
      for (std::size_t dr = 0; dr < side && cells.size() < length; ++dr) {
        for (std::size_t dc = 0; dc < side && cells.size() < length; ++dc) {
          if (r + dr < rows && c + dc < cols) {
            cells.push_back({r + dr, c + dc});
          }
        }
      }
      break;
    }
  }
  return cells;
}

std::vector<DataFlip> inject_burst(util::Rng& rng, util::BitMatrix& data,
                                   std::size_t length, BurstShape shape) {
  const std::size_t r = rng.uniform_below(data.rows());
  const std::size_t c = rng.uniform_below(data.cols());
  std::vector<DataFlip> cells =
      burst_cells(data.rows(), data.cols(), r, c, length, shape);
  for (const DataFlip& cell : cells) data.flip(cell.r, cell.c);
  return cells;
}

}  // namespace pimecc::fault
