#include "fault/burst.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace pimecc::fault {

std::pair<std::size_t, std::size_t> burst_extent(std::size_t length,
                                                 BurstShape shape) {
  if (length == 0) {
    throw std::invalid_argument("burst_extent: length must be positive");
  }
  switch (shape) {
    case BurstShape::kHorizontal: return {1, length};
    case BurstShape::kVertical: return {length, 1};
    case BurstShape::kSquare: {
      const auto side = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(length))));
      return {(length + side - 1) / side, std::min(length, side)};
    }
  }
  throw std::invalid_argument("burst_extent: unknown shape");
}

std::vector<DataFlip> burst_cells(std::size_t rows, std::size_t cols,
                                  std::size_t r, std::size_t c,
                                  std::size_t length, BurstShape shape) {
  if (length == 0) {
    throw std::invalid_argument("burst_cells: length must be positive");
  }
  if (r >= rows || c >= cols) {
    throw std::out_of_range("burst_cells: anchor out of range");
  }
  std::vector<DataFlip> cells;
  switch (shape) {
    case BurstShape::kHorizontal:
      for (std::size_t i = 0; i < length && c + i < cols; ++i) {
        cells.push_back({r, c + i});
      }
      break;
    case BurstShape::kVertical:
      for (std::size_t i = 0; i < length && r + i < rows; ++i) {
        cells.push_back({r + i, c});
      }
      break;
    case BurstShape::kSquare: {
      const auto side = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(length))));
      for (std::size_t dr = 0; dr < side && cells.size() < length; ++dr) {
        for (std::size_t dc = 0; dc < side && cells.size() < length; ++dc) {
          if (r + dr < rows && c + dc < cols) {
            cells.push_back({r + dr, c + dc});
          }
        }
      }
      break;
    }
  }
  return cells;
}

DataFlip sample_burst_anchor(util::Rng& rng, std::size_t rows, std::size_t cols,
                             std::size_t length, BurstShape shape) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("sample_burst_anchor: empty array");
  }
  const auto [extent_r, extent_c] = burst_extent(length, shape);
  // Anchors in [0, dim - extent] leave room for the full bounding box; when
  // the array is smaller than the extent no anchor can, so fall back to the
  // whole axis (the burst clips -- the residual small-array case).
  const std::size_t bound_r = rows >= extent_r ? rows - extent_r + 1 : rows;
  const std::size_t bound_c = cols >= extent_c ? cols - extent_c + 1 : cols;
  const std::size_t r = rng.uniform_below(bound_r);
  const std::size_t c = rng.uniform_below(bound_c);
  return {r, c};
}

std::vector<DataFlip> inject_burst(util::Rng& rng, util::BitMatrix& data,
                                   std::size_t length, BurstShape shape) {
  const DataFlip anchor =
      sample_burst_anchor(rng, data.rows(), data.cols(), length, shape);
  std::vector<DataFlip> cells =
      burst_cells(data.rows(), data.cols(), anchor.r, anchor.c, length, shape);
  for (const DataFlip& cell : cells) data.flip(cell.r, cell.c);
  return cells;
}

std::vector<DataFlip> correlated_burst_cells(util::Rng& rng, std::size_t rows,
                                             std::size_t cols, std::size_t m,
                                             std::size_t length,
                                             BurstShape shape,
                                             double spread_probability) {
  if (m == 0 || rows % m != 0 || cols % m != 0) {
    throw std::invalid_argument(
        "correlated_burst_cells: m must divide both dimensions");
  }
  if (!(spread_probability >= 0.0) || !(spread_probability <= 1.0)) {
    throw std::invalid_argument(
        "correlated_burst_cells: spread_probability must be in [0, 1]");
  }
  const DataFlip primary = sample_burst_anchor(rng, rows, cols, length, shape);
  std::vector<DataFlip> cells =
      burst_cells(rows, cols, primary.r, primary.c, length, shape);

  const auto [extent_r, extent_c] = burst_extent(length, shape);
  const std::size_t block_rows = rows / m;
  const std::size_t block_cols = cols / m;
  const std::size_t br = primary.r / m;
  const std::size_t bc = primary.c / m;
  // Up, down, left, right of the primary's anchor block, in that order.
  const long long neighbors[4][2] = {{-1, 0}, {1, 0}, {0, -1}, {0, 1}};
  for (const auto& d : neighbors) {
    const long long nbr = static_cast<long long>(br) + d[0];
    const long long nbc = static_cast<long long>(bc) + d[1];
    if (nbr < 0 || nbc < 0 ||
        nbr >= static_cast<long long>(block_rows) ||
        nbc >= static_cast<long long>(block_cols)) {
      continue;
    }
    if (!rng.bernoulli(spread_probability)) continue;
    // Anchor the secondary inside the neighbor block, clamped so its
    // bounding box stays in-block when m admits it (an m-overflowing shape
    // clips at the array edge like any other burst).
    const std::size_t local_bound_r = m >= extent_r ? m - extent_r + 1 : m;
    const std::size_t local_bound_c = m >= extent_c ? m - extent_c + 1 : m;
    const std::size_t sr =
        static_cast<std::size_t>(nbr) * m + rng.uniform_below(local_bound_r);
    const std::size_t sc =
        static_cast<std::size_t>(nbc) * m + rng.uniform_below(local_bound_c);
    const std::vector<DataFlip> secondary =
        burst_cells(rows, cols, sr, sc, length, shape);
    cells.insert(cells.end(), secondary.begin(), secondary.end());
  }

  // A primary that straddles a block boundary can overlap a secondary;
  // listing a cell twice would XOR it back to its original value, so the
  // event is the set union.
  std::sort(cells.begin(), cells.end(), [](const DataFlip& a, const DataFlip& b) {
    return a.r != b.r ? a.r < b.r : a.c < b.c;
  });
  cells.erase(std::unique(cells.begin(), cells.end(),
                          [](const DataFlip& a, const DataFlip& b) {
                            return a.r == b.r && a.c == b.c;
                          }),
              cells.end());
  return cells;
}

std::vector<DataFlip> inject_correlated_bursts(util::Rng& rng,
                                               util::BitMatrix& data,
                                               std::size_t m, std::size_t length,
                                               BurstShape shape,
                                               double spread_probability) {
  std::vector<DataFlip> cells = correlated_burst_cells(
      rng, data.rows(), data.cols(), m, length, shape, spread_probability);
  for (const DataFlip& cell : cells) data.flip(cell.r, cell.c);
  return cells;
}

}  // namespace pimecc::fault
