#include "fault/disturbance.hpp"

#include <cmath>
#include <stdexcept>

namespace pimecc::fault {

DisturbanceModel::DisturbanceModel(std::size_t rows, std::size_t cols,
                                   const DisturbanceParams& params)
    : rows_(rows), cols_(cols), params_(params) {
  if (rows == 0 || cols == 0) {
    throw std::invalid_argument("DisturbanceModel: dimensions must be positive");
  }
  if (!(params.flip_probability_per_activation >= 0.0) ||
      !std::isfinite(params.flip_probability_per_activation)) {
    throw std::invalid_argument(
        "DisturbanceModel: flip probability per activation must be finite and "
        ">= 0");
  }
  if (params.neighbor_radius == 0) {
    throw std::invalid_argument("DisturbanceModel: neighbor_radius must be >= 1");
  }
}

double DisturbanceModel::victim_pressure(std::span<const double> activations,
                                         std::size_t victim) const {
  if (activations.size() != rows_) {
    throw std::invalid_argument(
        "DisturbanceModel: activation vector size must equal rows");
  }
  if (victim >= rows_) {
    throw std::out_of_range("DisturbanceModel: victim row out of range");
  }
  const double floor = static_cast<double>(params_.activation_floor);
  const std::size_t lo =
      victim >= params_.neighbor_radius ? victim - params_.neighbor_radius : 0;
  const std::size_t hi = std::min(rows_ - 1, victim + params_.neighbor_radius);
  double pressure = 0.0;
  for (std::size_t u = lo; u <= hi; ++u) {
    if (u == victim) continue;
    const double effective = activations[u] - floor;
    if (effective > 0.0) pressure += effective;
  }
  return pressure;
}

double DisturbanceModel::row_flip_probability(double pressure) const noexcept {
  if (pressure <= 0.0) return 0.0;
  // -expm1(-x) = 1 - exp(-x) without cancellation for the tiny hazards
  // realistic parameters produce.
  return -std::expm1(-params_.flip_probability_per_activation * pressure);
}

void DisturbanceModel::sample(util::Rng& rng,
                              std::span<const double> activations,
                              std::vector<DataFlip>& out,
                              std::vector<std::size_t>& scratch) const {
  if (activations.size() != rows_) {
    throw std::invalid_argument(
        "DisturbanceModel: activation vector size must equal rows");
  }
  for (std::size_t v = 0; v < rows_; ++v) {
    const double p = row_flip_probability(victim_pressure(activations, v));
    if (p <= 0.0) continue;
    const std::size_t count =
        static_cast<std::size_t>(rng.binomial(cols_, p));
    if (count == 0) continue;
    sample_distinct(rng, cols_, count, scratch);
    for (const std::size_t c : scratch) out.push_back({v, c});
  }
}

std::vector<DataFlip> DisturbanceModel::sample(
    util::Rng& rng, std::span<const std::uint64_t> activations) const {
  std::vector<double> counts(activations.begin(), activations.end());
  std::vector<DataFlip> out;
  std::vector<std::size_t> scratch;
  sample(rng, counts, out, scratch);
  return out;
}

}  // namespace pimecc::fault
