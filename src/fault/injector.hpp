// pimecc -- fault/injector.hpp
//
// Applies sampled soft errors to simulator state: the n x n data matrix
// (MEM) and the per-block check bits (CMEM).  Check-bit memristors are as
// vulnerable as data memristors, so reliability experiments inject into
// both populations, proportionally to their cell counts.
#pragma once

#include <cstddef>
#include <vector>

#include "core/array_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace pimecc::fault {

/// Coordinates of one injected flip in the data array.
struct DataFlip {
  std::size_t r = 0;
  std::size_t c = 0;
};

/// Coordinates of one injected flip among the check bits.
struct CheckFlip {
  std::size_t block_row = 0;
  std::size_t block_col = 0;
  bool on_leading_axis = false;
  std::size_t index = 0;  ///< diagonal index within the block
};

/// Record of everything one injection call flipped.
struct InjectionRecord {
  std::vector<DataFlip> data_flips;
  std::vector<CheckFlip> check_flips;

  [[nodiscard]] std::size_t total() const noexcept {
    return data_flips.size() + check_flips.size();
  }
};

/// Flips exactly `count` distinct uniformly-chosen data cells.
InjectionRecord inject_data_flips(util::Rng& rng, util::BitMatrix& data,
                                  std::size_t count);

/// Flips exactly `count` distinct uniformly-chosen cells across the union
/// of data cells and check bits of `code` (the physically faithful
/// population for the paper's per-block reliability analysis).
InjectionRecord inject_flips_everywhere(util::Rng& rng, util::BitMatrix& data,
                                        ecc::ArrayCode& code, std::size_t count);

/// Flips `count` distinct cells inside one m x m block (+its check bits if
/// `include_check_bits`), for targeted per-block experiments.
InjectionRecord inject_block_flips(util::Rng& rng, util::BitMatrix& data,
                                   ecc::ArrayCode& code, std::size_t block_row,
                                   std::size_t block_col, std::size_t count,
                                   bool include_check_bits);

}  // namespace pimecc::fault
