// pimecc -- fault/injector.hpp
//
// Applies sampled soft errors to simulator state: the n x n data matrix
// (MEM) and the per-block check bits (CMEM).  Check-bit memristors are as
// vulnerable as data memristors, so reliability experiments inject into
// both populations, proportionally to their cell counts.
#pragma once

#include <cstddef>
#include <vector>

#include "core/array_code.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace pimecc::fault {

/// Coordinates of one injected flip in the data array.
struct DataFlip {
  std::size_t r = 0;
  std::size_t c = 0;
};

/// Coordinates of one injected flip among the check bits.
struct CheckFlip {
  std::size_t block_row = 0;
  std::size_t block_col = 0;
  bool on_leading_axis = false;
  std::size_t index = 0;  ///< diagonal index within the block
};

/// Record of everything one injection call flipped.
struct InjectionRecord {
  std::vector<DataFlip> data_flips;
  std::vector<CheckFlip> check_flips;

  [[nodiscard]] std::size_t total() const noexcept {
    return data_flips.size() + check_flips.size();
  }
  void clear() noexcept {
    data_flips.clear();
    check_flips.clear();
  }
};

/// Fills `out` with `count` distinct values in [0, population), sorted
/// ascending (Floyd's algorithm over a sorted vector: allocation-free once
/// `out` has capacity, no hash-set rehash churn on the Monte Carlo hot
/// path).  Rng consumption and the sampled set are identical to the
/// historical hash-set implementation, so seeds reproduce old records.
/// Throws std::invalid_argument (before drawing) if count > population.
void sample_distinct(util::Rng& rng, std::size_t population, std::size_t count,
                     std::vector<std::size_t>& out);

/// Flips exactly `count` distinct uniformly-chosen data cells.
InjectionRecord inject_data_flips(util::Rng& rng, util::BitMatrix& data,
                                  std::size_t count);
/// Allocation-free variant: `record` is cleared and refilled (capacity
/// reused across calls), `scratch` holds the sampled flat indices.
void inject_data_flips(util::Rng& rng, util::BitMatrix& data, std::size_t count,
                       InjectionRecord& record, std::vector<std::size_t>& scratch);

/// Flips exactly `count` distinct uniformly-chosen cells across the union
/// of data cells and check bits of `code` (the physically faithful
/// population for the paper's per-block reliability analysis).
InjectionRecord inject_flips_everywhere(util::Rng& rng, util::BitMatrix& data,
                                        ecc::ArrayCode& code, std::size_t count);
/// Allocation-free variant; see inject_data_flips.
void inject_flips_everywhere(util::Rng& rng, util::BitMatrix& data,
                             ecc::ArrayCode& code, std::size_t count,
                             InjectionRecord& record,
                             std::vector<std::size_t>& scratch);

/// Flips `count` distinct cells inside one m x m block (+its check bits if
/// `include_check_bits`), for targeted per-block experiments.  Validates
/// the shape and block coordinates before mutating anything (and before
/// consuming any randomness).
InjectionRecord inject_block_flips(util::Rng& rng, util::BitMatrix& data,
                                   ecc::ArrayCode& code, std::size_t block_row,
                                   std::size_t block_col, std::size_t count,
                                   bool include_check_bits);

/// Batch undo: re-flips every cell in `record`, restoring the exact
/// pre-injection data and check state (flips are involutions; order is
/// irrelevant).  The whole record is validated against the shapes before
/// anything is mutated.  Also correct for partially-repaired state in the
/// XOR sense: undoing after a scrub re-applies exactly the injected deltas.
void undo(const InjectionRecord& record, util::BitMatrix& data,
          ecc::ArrayCode& code);
/// Data-only undo for records with no check flips (throws otherwise).
void undo(const InjectionRecord& record, util::BitMatrix& data);

}  // namespace pimecc::fault
