// pimecc -- fault/models.hpp
//
// Soft-error models for memristive cells (paper Section II-B).
//
// The paper's quantitative analysis assumes errors "distributed uniformly
// and independently" with a constant Soft Error Rate (SER) lambda in
// FIT/bit; ConstantRateModel implements exactly that.  Two mechanistic
// variants are provided for the failure causes the paper cites: gradual
// state drift from oxygen-vacancy diffusion [6] (DriftModel) and abrupt
// upsets from ion strikes / environment [7-9] (ConstantRateModel with a
// window equal to the strike interval).  Periodic refresh [6] interacts
// with drift only; both compose with the ECC under test.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace pimecc::fault {

/// Constant-rate (exponential inter-arrival) soft-error model.
///
/// Over an exposure window of `hours`, each bit flips independently with
/// probability 1 - exp(-lambda * T / 1e9).
class ConstantRateModel {
 public:
  /// lambda in FIT/bit; must be >= 0.
  explicit ConstantRateModel(double fit_per_bit);

  [[nodiscard]] double fit_per_bit() const noexcept { return fit_per_bit_; }

  /// Per-bit flip probability over `hours`.
  [[nodiscard]] double flip_probability(double hours) const noexcept {
    return util::error_probability(fit_per_bit_, hours);
  }

  /// Samples how many of `bits` cells flip during `hours` (binomial).
  [[nodiscard]] std::size_t sample_flip_count(util::Rng& rng, std::size_t bits,
                                              double hours) const;

 private:
  double fit_per_bit_;
};

/// Gradual state-drift model: each cell accumulates drift per time step;
/// crossing the threshold flips the stored bit.  A refresh resets all
/// accumulators (the mechanism of [6]); errors that already crossed the
/// threshold before the refresh are *not* undone -- matching the paper's
/// remark that refresh cannot fix errors occurring between refreshes.
class DriftModel {
 public:
  /// `cells`: number of modeled cells.
  /// `drift_per_hour_mean/stddev`: per-step accumulation (gaussian, clamped
  ///   at 0).
  /// `threshold`: accumulated drift at which the cell's bit flips.
  DriftModel(std::size_t cells, double drift_per_hour_mean,
             double drift_per_hour_stddev, double threshold);

  /// Advances `hours`; returns indices of cells that newly flipped.
  std::vector<std::size_t> advance(util::Rng& rng, double hours);

  /// Resets all accumulators (periodic refresh).
  void refresh() noexcept;

  [[nodiscard]] std::size_t cells() const noexcept { return accum_.size(); }
  [[nodiscard]] std::size_t flipped_count() const noexcept;

 private:
  std::vector<double> accum_;
  std::vector<bool> flipped_;
  double mean_;
  double stddev_;
  double threshold_;
};

/// Transient-vs-stuck-at bookkeeping for the scenario engine
/// (reliability/scenario.hpp).  A transient upset vanishes once the ECC
/// repairs the cell; a stuck-at cell's device is latched at the wrong
/// resistance state, so every repair is immediately undone -- the cell
/// re-asserts its faulty value after each scrub -- until the controller
/// gives up and remaps it to a spare after `replace_after_repairs`
/// repairs, at which point the (spare) cell holds the correct value for
/// good.  Cells are identified by caller-defined flat ids.
class StuckAtSet {
 public:
  /// `replace_after_repairs` must be >= 1 (a cell replaced after 0 repairs
  /// would never have been stuck at all).
  explicit StuckAtSet(std::size_t replace_after_repairs);

  /// Latches `cell` at its current (faulty) value.  Returns false if it
  /// was already stuck (no state change).
  bool mark(std::size_t cell);
  [[nodiscard]] bool is_stuck(std::size_t cell) const {
    return stuck_.count(cell) != 0;
  }
  /// Records one ECC repair of a stuck cell.  Returns true when this
  /// repair reached the replacement threshold: the cell is remapped to a
  /// spare, leaves the set, and stays repaired.  Returns false while the
  /// cell remains stuck (the repair is immediately re-flipped).  Throws
  /// std::logic_error if `cell` is not stuck.
  bool on_repair(std::size_t cell);

  [[nodiscard]] std::size_t stuck_count() const noexcept { return stuck_.size(); }
  [[nodiscard]] std::size_t replaced_count() const noexcept { return replaced_; }
  void clear() noexcept;

 private:
  std::unordered_map<std::size_t, std::size_t> stuck_;  ///< cell -> repairs so far
  std::size_t replace_after_;
  std::size_t replaced_ = 0;
};

}  // namespace pimecc::fault
