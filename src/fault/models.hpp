// pimecc -- fault/models.hpp
//
// Soft-error models for memristive cells (paper Section II-B).
//
// The paper's quantitative analysis assumes errors "distributed uniformly
// and independently" with a constant Soft Error Rate (SER) lambda in
// FIT/bit; ConstantRateModel implements exactly that.  Two mechanistic
// variants are provided for the failure causes the paper cites: gradual
// state drift from oxygen-vacancy diffusion [6] (DriftModel) and abrupt
// upsets from ion strikes / environment [7-9] (ConstantRateModel with a
// window equal to the strike interval).  Periodic refresh [6] interacts
// with drift only; both compose with the ECC under test.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace pimecc::fault {

/// Constant-rate (exponential inter-arrival) soft-error model.
///
/// Over an exposure window of `hours`, each bit flips independently with
/// probability 1 - exp(-lambda * T / 1e9).
class ConstantRateModel {
 public:
  /// lambda in FIT/bit; must be >= 0.
  explicit ConstantRateModel(double fit_per_bit);

  [[nodiscard]] double fit_per_bit() const noexcept { return fit_per_bit_; }

  /// Per-bit flip probability over `hours`.
  [[nodiscard]] double flip_probability(double hours) const noexcept {
    return util::error_probability(fit_per_bit_, hours);
  }

  /// Samples how many of `bits` cells flip during `hours` (binomial).
  [[nodiscard]] std::size_t sample_flip_count(util::Rng& rng, std::size_t bits,
                                              double hours) const;

 private:
  double fit_per_bit_;
};

/// Gradual state-drift model: each cell accumulates drift per time step;
/// crossing the threshold flips the stored bit.  A refresh resets all
/// accumulators (the mechanism of [6]); errors that already crossed the
/// threshold before the refresh are *not* undone -- matching the paper's
/// remark that refresh cannot fix errors occurring between refreshes.
class DriftModel {
 public:
  /// `cells`: number of modeled cells.
  /// `drift_per_hour_mean/stddev`: per-step accumulation (gaussian, clamped
  ///   at 0).
  /// `threshold`: accumulated drift at which the cell's bit flips.
  DriftModel(std::size_t cells, double drift_per_hour_mean,
             double drift_per_hour_stddev, double threshold);

  /// Advances `hours`; returns indices of cells that newly flipped.
  std::vector<std::size_t> advance(util::Rng& rng, double hours);

  /// Resets all accumulators (periodic refresh).
  void refresh() noexcept;

  [[nodiscard]] std::size_t cells() const noexcept { return accum_.size(); }
  [[nodiscard]] std::size_t flipped_count() const noexcept;

 private:
  std::vector<double> accum_;
  std::vector<bool> flipped_;
  double mean_;
  double stddev_;
  double threshold_;
};

}  // namespace pimecc::fault
