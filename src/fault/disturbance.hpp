// pimecc -- fault/disturbance.hpp
//
// Activation-induced disturbance (PRAC-style, arxiv 2507.05556): driving a
// wordline repeatedly disturbs the rows electrically adjacent to it, and
// the victim's flip probability grows with the aggressor's activation
// count.  The per-row activation counters that feed this model are exposed
// by xbar::Crossbar::row_activations() / arch::PimMachine; the scenario
// engine (reliability/scenario.hpp) instead integrates a deterministic
// per-row activation *rate* over each inter-scrub window.
//
// Hazard model: a victim row v accumulates pressure
//     A(v) = sum over aggressors u in [v-radius, v+radius], u != v
//            of max(0, activations(u) - activation_floor)
// and each of its cells flips independently with probability
//     p(v) = 1 - exp(-flip_probability_per_activation * A(v)),
// i.e. every effective aggressor activation is an independent Bernoulli
// hazard per victim cell -- additive in aggressors, saturating at 1, and
// chunk-invariant: splitting a window into sub-windows with the same total
// activations yields the same flip distribution.  The floor models PRAC's
// counting threshold: rows activated fewer than `activation_floor` times
// are not yet aggressors.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "fault/injector.hpp"
#include "util/rng.hpp"

namespace pimecc::fault {

/// Disturbance strength and neighborhood; see the file comment.
struct DisturbanceParams {
  /// Per-victim-cell flip hazard per effective aggressor activation; must
  /// be >= 0 and finite (realistic values are tiny, e.g. 1e-9 .. 1e-6).
  double flip_probability_per_activation = 0.0;
  /// Rows within this distance of an aggressor are its victims (>= 1).
  std::size_t neighbor_radius = 1;
  /// Activations below this per-aggressor count are ignored.
  std::uint64_t activation_floor = 0;
};

/// Samples neighbor-row disturbance flips from per-row activation counts.
class DisturbanceModel {
 public:
  /// Geometry of the protected array; both dimensions must be positive.
  DisturbanceModel(std::size_t rows, std::size_t cols,
                   const DisturbanceParams& params);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] const DisturbanceParams& params() const noexcept {
    return params_;
  }

  /// Total effective aggressor activations pressing on `victim`.
  /// `activations.size()` must equal rows().
  [[nodiscard]] double victim_pressure(std::span<const double> activations,
                                       std::size_t victim) const;

  /// Per-cell flip probability of a victim row under `pressure` effective
  /// aggressor activations: 1 - exp(-k * pressure).
  [[nodiscard]] double row_flip_probability(double pressure) const noexcept;

  /// Samples one exposure: `activations[r]` is row r's activation count
  /// accumulated over the window (fractional counts are allowed -- the
  /// scenario engine integrates rate x hours).  Appends the flipped cells
  /// to `out` in (row, then column) sorted order; `scratch` holds sampled
  /// column indices between rows.  Rows are visited in ascending order and
  /// rows with zero pressure consume no randomness, so draw order is a
  /// deterministic function of the activation vector.
  void sample(util::Rng& rng, std::span<const double> activations,
              std::vector<DataFlip>& out, std::vector<std::size_t>& scratch) const;

  /// Convenience allocating overload (integer counters, e.g. straight from
  /// Crossbar::row_activation_snapshot()).
  [[nodiscard]] std::vector<DataFlip> sample(
      util::Rng& rng, std::span<const std::uint64_t> activations) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  DisturbanceParams params_;
};

}  // namespace pimecc::fault
