// pimecc -- fault/burst.hpp
//
// Spatially-correlated multi-bit upsets (paper Section II-B, refs [7][8]:
// ion strikes flip clusters of adjacent cells, not just single bits).
//
// The diagonal code has a useful structural property against clusters: any
// set of distinct cells within one block whose pairwise row and column
// offsets are all smaller than m flags at least two diagonals on some axis
// whenever it has >= 2 cells -- adjacent cells can never share both
// diagonals -- so in-block bursts shorter than m are always *detected*,
// never silently miscorrected.  bench_burst_errors measures this.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "fault/injector.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace pimecc::fault {

/// Cluster shapes observed in heavy-ion testing.
enum class BurstShape : unsigned char {
  kHorizontal,  ///< 1 x length run along a wordline
  kVertical,    ///< length x 1 run along a bitline
  kSquare,      ///< ceil(sqrt(length))-sided square patch (truncated)
};

[[nodiscard]] constexpr const char* to_string(BurstShape s) noexcept {
  switch (s) {
    case BurstShape::kHorizontal: return "horizontal";
    case BurstShape::kVertical: return "vertical";
    case BurstShape::kSquare: return "square";
  }
  return "?";
}

/// Bounding box {rows, cols} of a full (unclipped) burst of `length` cells:
/// 1 x length, length x 1, or for kSquare the truncated row-major fill of a
/// ceil(sqrt(length))-sided patch (ceil(length/side) rows by
/// min(length, side) columns).  Length must be positive.
[[nodiscard]] std::pair<std::size_t, std::size_t> burst_extent(
    std::size_t length, BurstShape shape);

/// Computes the cells of a burst of `length` cells anchored at (r, c),
/// clipped to the matrix bounds.
[[nodiscard]] std::vector<DataFlip> burst_cells(std::size_t rows,
                                                std::size_t cols, std::size_t r,
                                                std::size_t c, std::size_t length,
                                                BurstShape shape);

/// Samples a burst anchor such that the full `length`-cell burst fits
/// whenever the geometry admits one: uniform over the anchors whose
/// bounding box (burst_extent) lies inside rows x cols.  Only when the
/// array itself is smaller than the burst's extent on an axis does the
/// anchor distribution degrade to "anywhere on that axis" and the burst
/// clip at the edge -- the residual small-array clip.  Always consumes
/// exactly two rng draws.
[[nodiscard]] DataFlip sample_burst_anchor(util::Rng& rng, std::size_t rows,
                                           std::size_t cols, std::size_t length,
                                           BurstShape shape);

/// Flips one burst at a sample_burst_anchor() anchor; returns the flipped
/// cells.  Historically the anchor was uniform over the whole array, which
/// silently clipped at the right/bottom edges and biased the delivered
/// burst length downward (kSquare under-delivered even when a full patch
/// fit elsewhere); the clamped anchor delivers exactly `length` cells
/// whenever the array is at least burst_extent() large.
std::vector<DataFlip> inject_burst(util::Rng& rng, util::BitMatrix& data,
                                   std::size_t length, BurstShape shape);

/// Samples one correlated inter-block burst event over a rows x cols array
/// tiled into m x m blocks (m must divide both dimensions): a primary
/// burst at a clamped uniform anchor, plus -- independently with
/// probability `spread_probability` each -- one secondary burst in each of
/// the (up to 4) edge-adjacent neighbor blocks of the primary's anchor
/// block, modeling a single strike whose charge spreads across block
/// boundaries.  Secondary anchors are clamped inside their block so the
/// secondary lands in the neighbor it models.  The returned cells are
/// deduplicated (overlapping sub-bursts must not XOR-cancel), sorted by
/// (r, c).  Neighbor order (up, down, left, right) and draw order are
/// fixed, so a given rng stream reproduces the event exactly.
[[nodiscard]] std::vector<DataFlip> correlated_burst_cells(
    util::Rng& rng, std::size_t rows, std::size_t cols, std::size_t m,
    std::size_t length, BurstShape shape, double spread_probability);

/// Flips one correlated_burst_cells() event; returns the flipped cells.
std::vector<DataFlip> inject_correlated_bursts(util::Rng& rng,
                                               util::BitMatrix& data,
                                               std::size_t m, std::size_t length,
                                               BurstShape shape,
                                               double spread_probability);

}  // namespace pimecc::fault
