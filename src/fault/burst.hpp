// pimecc -- fault/burst.hpp
//
// Spatially-correlated multi-bit upsets (paper Section II-B, refs [7][8]:
// ion strikes flip clusters of adjacent cells, not just single bits).
//
// The diagonal code has a useful structural property against clusters: any
// set of distinct cells within one block whose pairwise row and column
// offsets are all smaller than m flags at least two diagonals on some axis
// whenever it has >= 2 cells -- adjacent cells can never share both
// diagonals -- so in-block bursts shorter than m are always *detected*,
// never silently miscorrected.  bench_burst_errors measures this.
#pragma once

#include <cstddef>
#include <vector>

#include "fault/injector.hpp"
#include "util/bitmatrix.hpp"
#include "util/rng.hpp"

namespace pimecc::fault {

/// Cluster shapes observed in heavy-ion testing.
enum class BurstShape : unsigned char {
  kHorizontal,  ///< 1 x length run along a wordline
  kVertical,    ///< length x 1 run along a bitline
  kSquare,      ///< ceil(sqrt(length))-sided square patch (truncated)
};

[[nodiscard]] constexpr const char* to_string(BurstShape s) noexcept {
  switch (s) {
    case BurstShape::kHorizontal: return "horizontal";
    case BurstShape::kVertical: return "vertical";
    case BurstShape::kSquare: return "square";
  }
  return "?";
}

/// Computes the cells of a burst of `length` cells anchored at (r, c),
/// clipped to the matrix bounds.
[[nodiscard]] std::vector<DataFlip> burst_cells(std::size_t rows,
                                                std::size_t cols, std::size_t r,
                                                std::size_t c, std::size_t length,
                                                BurstShape shape);

/// Flips one burst at a uniformly-random anchor; returns the flipped cells.
std::vector<DataFlip> inject_burst(util::Rng& rng, util::BitMatrix& data,
                                   std::size_t length, BurstShape shape);

}  // namespace pimecc::fault
