#include "fault/models.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace pimecc::fault {

ConstantRateModel::ConstantRateModel(double fit_per_bit) : fit_per_bit_(fit_per_bit) {
  if (fit_per_bit < 0.0) {
    throw std::invalid_argument("ConstantRateModel: rate must be non-negative");
  }
}

std::size_t ConstantRateModel::sample_flip_count(util::Rng& rng, std::size_t bits,
                                                 double hours) const {
  const double p = flip_probability(hours);
  return static_cast<std::size_t>(rng.binomial(bits, p));
}

DriftModel::DriftModel(std::size_t cells, double drift_per_hour_mean,
                       double drift_per_hour_stddev, double threshold)
    : accum_(cells, 0.0),
      flipped_(cells, false),
      mean_(drift_per_hour_mean),
      stddev_(drift_per_hour_stddev),
      threshold_(threshold) {
  if (threshold <= 0.0) {
    throw std::invalid_argument("DriftModel: threshold must be positive");
  }
  if (drift_per_hour_mean < 0.0 || drift_per_hour_stddev < 0.0) {
    throw std::invalid_argument("DriftModel: drift parameters must be non-negative");
  }
}

std::vector<std::size_t> DriftModel::advance(util::Rng& rng, double hours) {
  std::vector<std::size_t> newly_flipped;
  if (hours <= 0.0) return newly_flipped;
  if (stddev_ == 0.0) {
    // Deterministic drift: no distribution object, no rng consumption.
    for (std::size_t i = 0; i < accum_.size(); ++i) {
      if (flipped_[i]) continue;
      accum_[i] += mean_ * hours;
      if (accum_[i] >= threshold_) {
        flipped_[i] = true;
        newly_flipped.push_back(i);
      }
    }
    return newly_flipped;
  }
  // The window's drift is the sum of independent per-hour gaussian steps,
  // so its variance grows linearly with `hours` and the stddev with
  // sqrt(hours) -- advance(2h) must be distributed like advance(1h) twice
  // (the clamp at 0 keeps accumulation monotone in either chunking).
  std::normal_distribution<double> step(mean_ * hours,
                                        stddev_ * std::sqrt(hours));
  for (std::size_t i = 0; i < accum_.size(); ++i) {
    if (flipped_[i]) continue;
    accum_[i] += std::max(0.0, step(rng));
    if (accum_[i] >= threshold_) {
      flipped_[i] = true;
      newly_flipped.push_back(i);
    }
  }
  return newly_flipped;
}

void DriftModel::refresh() noexcept {
  std::fill(accum_.begin(), accum_.end(), 0.0);
}

std::size_t DriftModel::flipped_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(flipped_.begin(), flipped_.end(), true));
}

StuckAtSet::StuckAtSet(std::size_t replace_after_repairs)
    : replace_after_(replace_after_repairs) {
  if (replace_after_repairs == 0) {
    throw std::invalid_argument(
        "StuckAtSet: replace_after_repairs must be >= 1");
  }
}

bool StuckAtSet::mark(std::size_t cell) {
  return stuck_.emplace(cell, 0).second;
}

bool StuckAtSet::on_repair(std::size_t cell) {
  const auto it = stuck_.find(cell);
  if (it == stuck_.end()) {
    throw std::logic_error("StuckAtSet::on_repair: cell is not stuck");
  }
  if (++it->second < replace_after_) return false;
  stuck_.erase(it);
  ++replaced_;
  return true;
}

void StuckAtSet::clear() noexcept {
  stuck_.clear();
  replaced_ = 0;
}

}  // namespace pimecc::fault
