#include "fault/models.hpp"

#include <algorithm>
#include <random>
#include <stdexcept>

namespace pimecc::fault {

ConstantRateModel::ConstantRateModel(double fit_per_bit) : fit_per_bit_(fit_per_bit) {
  if (fit_per_bit < 0.0) {
    throw std::invalid_argument("ConstantRateModel: rate must be non-negative");
  }
}

std::size_t ConstantRateModel::sample_flip_count(util::Rng& rng, std::size_t bits,
                                                 double hours) const {
  const double p = flip_probability(hours);
  return static_cast<std::size_t>(rng.binomial(bits, p));
}

DriftModel::DriftModel(std::size_t cells, double drift_per_hour_mean,
                       double drift_per_hour_stddev, double threshold)
    : accum_(cells, 0.0),
      flipped_(cells, false),
      mean_(drift_per_hour_mean),
      stddev_(drift_per_hour_stddev),
      threshold_(threshold) {
  if (threshold <= 0.0) {
    throw std::invalid_argument("DriftModel: threshold must be positive");
  }
  if (drift_per_hour_mean < 0.0 || drift_per_hour_stddev < 0.0) {
    throw std::invalid_argument("DriftModel: drift parameters must be non-negative");
  }
}

std::vector<std::size_t> DriftModel::advance(util::Rng& rng, double hours) {
  std::vector<std::size_t> newly_flipped;
  if (hours <= 0.0) return newly_flipped;
  // std::normal_distribution requires a strictly positive stddev; a zero
  // spread degenerates to deterministic drift.
  const bool deterministic = stddev_ == 0.0;
  std::normal_distribution<double> step(mean_ * hours,
                                        deterministic ? 1.0 : stddev_ * hours);
  for (std::size_t i = 0; i < accum_.size(); ++i) {
    if (flipped_[i]) continue;
    accum_[i] += deterministic ? mean_ * hours : std::max(0.0, step(rng));
    if (accum_[i] >= threshold_) {
      flipped_[i] = true;
      newly_flipped.push_back(i);
    }
  }
  return newly_flipped;
}

void DriftModel::refresh() noexcept {
  std::fill(accum_.begin(), accum_.end(), 0.0);
}

std::size_t DriftModel::flipped_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(flipped_.begin(), flipped_.end(), true));
}

}  // namespace pimecc::fault
