#include "fault/injector.hpp"

#include <algorithm>
#include <stdexcept>

namespace pimecc::fault {

namespace {

CheckFlip apply_check_flip(ecc::ArrayCode& code, std::size_t block_row,
                           std::size_t block_col, std::size_t check_slot) {
  const std::size_t m = code.m();
  CheckFlip flip;
  flip.block_row = block_row;
  flip.block_col = block_col;
  flip.on_leading_axis = check_slot < m;
  flip.index = check_slot % m;
  ecc::CheckBits& bits = code.check_bits_mutable({block_row, block_col});
  if (flip.on_leading_axis) {
    bits.leading.flip(flip.index);
  } else {
    bits.counter.flip(flip.index);
  }
  return flip;
}

}  // namespace

void sample_distinct(util::Rng& rng, std::size_t population, std::size_t count,
                     std::vector<std::size_t>& out) {
  out.clear();
  if (count > population) {
    throw std::invalid_argument("sample_distinct: count exceeds population");
  }
  // Floyd: for j in [population - count, population), pick t <= j; if t was
  // already chosen take j itself.  Every value already in `out` is < j, so
  // taking j is a plain push_back and the vector stays sorted.
  for (std::size_t j = population - count; j < population; ++j) {
    const std::size_t t = static_cast<std::size_t>(rng.uniform_below(j + 1));
    const auto it = std::lower_bound(out.begin(), out.end(), t);
    if (it != out.end() && *it == t) {
      out.push_back(j);
    } else {
      out.insert(it, t);
    }
  }
}

void inject_data_flips(util::Rng& rng, util::BitMatrix& data, std::size_t count,
                       InjectionRecord& record,
                       std::vector<std::size_t>& scratch) {
  record.clear();
  const std::size_t population = data.rows() * data.cols();
  sample_distinct(rng, population, count, scratch);
  for (const std::size_t flat : scratch) {
    const std::size_t r = flat / data.cols();
    const std::size_t c = flat % data.cols();
    data.flip(r, c);
    record.data_flips.push_back({r, c});
  }
}

InjectionRecord inject_data_flips(util::Rng& rng, util::BitMatrix& data,
                                  std::size_t count) {
  InjectionRecord record;
  std::vector<std::size_t> scratch;
  inject_data_flips(rng, data, count, record, scratch);
  return record;
}

void inject_flips_everywhere(util::Rng& rng, util::BitMatrix& data,
                             ecc::ArrayCode& code, std::size_t count,
                             InjectionRecord& record,
                             std::vector<std::size_t>& scratch) {
  if (data.rows() != code.n() || data.cols() != code.n()) {
    throw std::invalid_argument("inject_flips_everywhere: shape mismatch");
  }
  record.clear();
  const std::size_t data_cells = code.n() * code.n();
  const std::size_t check_cells = code.block_count() * 2 * code.m();
  sample_distinct(rng, data_cells + check_cells, count, scratch);
  for (const std::size_t flat : scratch) {
    if (flat < data_cells) {
      const std::size_t r = flat / code.n();
      const std::size_t c = flat % code.n();
      data.flip(r, c);
      record.data_flips.push_back({r, c});
    } else {
      const std::size_t rel = flat - data_cells;
      const std::size_t per_block = 2 * code.m();
      const std::size_t block = rel / per_block;
      const std::size_t slot = rel % per_block;
      record.check_flips.push_back(apply_check_flip(
          code, block / code.blocks_per_side(), block % code.blocks_per_side(), slot));
    }
  }
}

InjectionRecord inject_flips_everywhere(util::Rng& rng, util::BitMatrix& data,
                                        ecc::ArrayCode& code, std::size_t count) {
  InjectionRecord record;
  std::vector<std::size_t> scratch;
  inject_flips_everywhere(rng, data, code, count, record, scratch);
  return record;
}

InjectionRecord inject_block_flips(util::Rng& rng, util::BitMatrix& data,
                                   ecc::ArrayCode& code, std::size_t block_row,
                                   std::size_t block_col, std::size_t count,
                                   bool include_check_bits) {
  // Validate before mutating (and before consuming any randomness): a bad
  // block coordinate used to flip data cells at out-of-range positions
  // before check_bits_mutable finally threw.
  if (data.rows() != code.n() || data.cols() != code.n()) {
    throw std::invalid_argument("inject_block_flips: shape mismatch");
  }
  if (block_row >= code.blocks_per_side() || block_col >= code.blocks_per_side()) {
    throw std::out_of_range("inject_block_flips: block index out of range");
  }
  InjectionRecord record;
  const std::size_t m = code.m();
  const std::size_t data_cells = m * m;
  const std::size_t population = data_cells + (include_check_bits ? 2 * m : 0);
  std::vector<std::size_t> scratch;
  sample_distinct(rng, population, count, scratch);
  for (const std::size_t flat : scratch) {
    if (flat < data_cells) {
      const std::size_t r = block_row * m + flat / m;
      const std::size_t c = block_col * m + flat % m;
      data.flip(r, c);
      record.data_flips.push_back({r, c});
    } else {
      record.check_flips.push_back(
          apply_check_flip(code, block_row, block_col, flat - data_cells));
    }
  }
  return record;
}

namespace {

void require_data_flips_in_range(const InjectionRecord& record,
                                 const util::BitMatrix& data) {
  for (const DataFlip& f : record.data_flips) {
    if (f.r >= data.rows() || f.c >= data.cols()) {
      throw std::out_of_range("undo: data flip out of range");
    }
  }
}

}  // namespace

void undo(const InjectionRecord& record, util::BitMatrix& data,
          ecc::ArrayCode& code) {
  if (data.rows() != code.n() || data.cols() != code.n()) {
    throw std::invalid_argument("undo: shape mismatch");
  }
  require_data_flips_in_range(record, data);
  for (const CheckFlip& f : record.check_flips) {
    if (f.block_row >= code.blocks_per_side() ||
        f.block_col >= code.blocks_per_side() || f.index >= code.m()) {
      throw std::out_of_range("undo: check flip out of range");
    }
  }
  for (const DataFlip& f : record.data_flips) data.flip(f.r, f.c);
  for (const CheckFlip& f : record.check_flips) {
    ecc::CheckBits& bits = code.check_bits_mutable({f.block_row, f.block_col});
    if (f.on_leading_axis) {
      bits.leading.flip(f.index);
    } else {
      bits.counter.flip(f.index);
    }
  }
}

void undo(const InjectionRecord& record, util::BitMatrix& data) {
  if (!record.check_flips.empty()) {
    throw std::invalid_argument("undo: record has check flips but no code given");
  }
  require_data_flips_in_range(record, data);
  for (const DataFlip& f : record.data_flips) data.flip(f.r, f.c);
}

}  // namespace pimecc::fault
