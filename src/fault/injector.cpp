#include "fault/injector.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace pimecc::fault {

namespace {

/// Samples `count` distinct values in [0, population) (Floyd's algorithm).
/// Returned sorted: hash-set iteration order is implementation-defined, and
/// the deterministic Monte Carlo engine needs the injection record to
/// depend only on the rng stream, not on container internals.
std::vector<std::size_t> sample_distinct(util::Rng& rng, std::size_t population,
                                         std::size_t count) {
  if (count > population) {
    throw std::invalid_argument("sample_distinct: count exceeds population");
  }
  std::unordered_set<std::size_t> chosen;
  chosen.reserve(count);
  for (std::size_t j = population - count; j < population; ++j) {
    const std::size_t t = static_cast<std::size_t>(rng.uniform_below(j + 1));
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  std::vector<std::size_t> out(chosen.begin(), chosen.end());
  std::sort(out.begin(), out.end());
  return out;
}

CheckFlip apply_check_flip(ecc::ArrayCode& code, std::size_t block_row,
                           std::size_t block_col, std::size_t check_slot) {
  const std::size_t m = code.m();
  CheckFlip flip;
  flip.block_row = block_row;
  flip.block_col = block_col;
  flip.on_leading_axis = check_slot < m;
  flip.index = check_slot % m;
  ecc::CheckBits& bits = code.check_bits_mutable({block_row, block_col});
  if (flip.on_leading_axis) {
    bits.leading.flip(flip.index);
  } else {
    bits.counter.flip(flip.index);
  }
  return flip;
}

}  // namespace

InjectionRecord inject_data_flips(util::Rng& rng, util::BitMatrix& data,
                                  std::size_t count) {
  InjectionRecord record;
  const std::size_t population = data.rows() * data.cols();
  for (const std::size_t flat : sample_distinct(rng, population, count)) {
    const std::size_t r = flat / data.cols();
    const std::size_t c = flat % data.cols();
    data.flip(r, c);
    record.data_flips.push_back({r, c});
  }
  return record;
}

InjectionRecord inject_flips_everywhere(util::Rng& rng, util::BitMatrix& data,
                                        ecc::ArrayCode& code, std::size_t count) {
  if (data.rows() != code.n() || data.cols() != code.n()) {
    throw std::invalid_argument("inject_flips_everywhere: shape mismatch");
  }
  InjectionRecord record;
  const std::size_t data_cells = code.n() * code.n();
  const std::size_t check_cells = code.block_count() * 2 * code.m();
  for (const std::size_t flat :
       sample_distinct(rng, data_cells + check_cells, count)) {
    if (flat < data_cells) {
      const std::size_t r = flat / code.n();
      const std::size_t c = flat % code.n();
      data.flip(r, c);
      record.data_flips.push_back({r, c});
    } else {
      const std::size_t rel = flat - data_cells;
      const std::size_t per_block = 2 * code.m();
      const std::size_t block = rel / per_block;
      const std::size_t slot = rel % per_block;
      record.check_flips.push_back(apply_check_flip(
          code, block / code.blocks_per_side(), block % code.blocks_per_side(), slot));
    }
  }
  return record;
}

InjectionRecord inject_block_flips(util::Rng& rng, util::BitMatrix& data,
                                   ecc::ArrayCode& code, std::size_t block_row,
                                   std::size_t block_col, std::size_t count,
                                   bool include_check_bits) {
  InjectionRecord record;
  const std::size_t m = code.m();
  const std::size_t data_cells = m * m;
  const std::size_t population = data_cells + (include_check_bits ? 2 * m : 0);
  for (const std::size_t flat : sample_distinct(rng, population, count)) {
    if (flat < data_cells) {
      const std::size_t r = block_row * m + flat / m;
      const std::size_t c = block_col * m + flat % m;
      data.flip(r, c);
      record.data_flips.push_back({r, c});
    } else {
      record.check_flips.push_back(
          apply_check_flip(code, block_row, block_col, flat - data_cells));
    }
  }
  return record;
}

}  // namespace pimecc::fault
